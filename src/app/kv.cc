#include "app/kv.hh"

#include "util/panic.hh"

namespace anic::app {

// ------------------------------------------------------------- server

KvServer::KvServer(core::Node &node, uint16_t port, StorageService &storage,
                   KvServerConfig cfg)
    : node_(node), storage_(storage), cfg_(std::move(cfg)),
      scope_(node.subScope("kv"))
{
    cfg_.tlsCfg.aggregate = &tlsAgg_;
    scope_.link("gets", stats_.gets);
    scope_.link("errors", stats_.errors);
    scope_.link("bytesSent", stats_.bytesSent);
    tls::linkTlsStats(scope_, "tls", tlsAgg_);
    node_.stack().listen(port, node_.tcpConfig(),
                         [this](tcp::TcpConnection &c) { accept(c); });
}

void
KvServer::accept(tcp::TcpConnection &c)
{
    auto conn = std::make_unique<Conn>();
    conn->srv = this;
    if (cfg_.tlsEnabled) {
        conn->tlsSock = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(cfg_.tlsSecret, false), cfg_.tlsCfg);
        conn->tlsSock->enableOffload(node_.device());
        conn->sock = conn->tlsSock.get();
    } else {
        conn->sock = &c;
    }
    Conn *cp = conn.get();
    cp->sock->setOnReadable([cp] { cp->onReadable(); });
    cp->sock->setOnWritable([cp] { cp->pump(); });
    conns_.push_back(std::move(conn));
}

void
KvServer::Conn::onReadable()
{
    while (sock->readable()) {
        tcp::RxSegment seg = sock->pop();
        reqBuf.append(reinterpret_cast<const char *>(seg.data.data()),
                      seg.data.size());
    }
    maybeServe();
}

void
KvServer::Conn::maybeServe()
{
    if (responding)
        return;
    size_t end = reqBuf.find("\r\n");
    if (end == std::string::npos)
        return;

    host::Core &core = sock->core();
    core.charge(core.model().kvRequestCost);

    uint32_t id = 0;
    bool ok = reqBuf.rfind("GET ", 0) == 0;
    if (ok)
        id = static_cast<uint32_t>(
            std::strtoul(reqBuf.substr(4, end - 4).c_str(), nullptr, 10));
    reqBuf.erase(0, end + 2);
    if (!ok || id >= srv->storage_.files().count()) {
        srv->stats_.errors++;
        return;
    }

    value = &srv->storage_.files().get(id);
    responding = true;
    std::string h = strprintf("VALUE %llu\r\n",
                              static_cast<unsigned long long>(value->size));
    hdr.assign(h.begin(), h.end());
    hdrSent = 0;
    bodySent = 0;

    srv->storage_.fetch(*value, core, [this](bool fetched) {
        if (!fetched) {
            srv->stats_.errors++;
            responding = false;
            return;
        }
        pump();
    });
}

void
KvServer::Conn::pump()
{
    if (!responding)
        return;
    while (hdrSent < hdr.size()) {
        size_t acc = sock->send(ByteView(hdr).subspan(hdrSent));
        hdrSent += acc;
        if (acc == 0)
            return;
    }
    while (bodySent < value->size) {
        uint64_t remaining = value->size - bodySent;
        size_t acc;
        if (srv->cfg_.tlsEnabled) {
            acc = tlsSock->sendFile(value->seed, value->lba + bodySent,
                                    remaining);
        } else {
            size_t n = static_cast<size_t>(std::min<uint64_t>(65536,
                                                              remaining));
            Bytes chunk(n);
            fillDeterministic(chunk, value->seed, value->lba + bodySent);
            acc = sock->send(chunk);
        }
        bodySent += acc;
        srv->stats_.bytesSent += acc;
        if (acc == 0)
            return;
    }
    responding = false;
    srv->stats_.gets++;
    maybeServe();
}

// ------------------------------------------------------------- client

KvClient::KvClient(core::Node &node, net::IpAddr localIp,
                   net::IpAddr serverIp, uint16_t port,
                   const host::FileStore &values, KvClientConfig cfg)
    : node_(node), localIp_(localIp), serverIp_(serverIp), port_(port),
      values_(values), cfg_(std::move(cfg)), rng_(cfg_.seed),
      scope_(node.subScope("kvClient"))
{
    cfg_.tlsCfg.aggregate = &tlsAgg_;
    scope_.link("responses", stats_.responses);
    scope_.link("bodyBytes", stats_.bodyBytes);
    scope_.link("corruptions", stats_.corruptions);
    scope_.link("latencyUs", stats_.latencyUs);
    scope_.link("goodput", meter_);
    tls::linkTlsStats(scope_, "tls", tlsAgg_);
}

void
KvClient::start()
{
    for (int i = 0; i < cfg_.connections; i++) {
        auto conn = std::make_unique<Conn>();
        conn->cli = this;
        Conn *cp = conn.get();
        tcp::TcpConnection &c = node_.stack().connect(
            localIp_, serverIp_, port_, node_.tcpConfig());
        c.setOnConnected([this, cp, &c] {
            if (cfg_.tlsEnabled) {
                cp->tlsSock = std::make_unique<tls::TlsSocket>(
                    c, tls::SessionKeys::derive(cfg_.tlsSecret, true),
                    cfg_.tlsCfg);
                cp->tlsSock->enableOffload(node_.device());
                cp->sock = cp->tlsSock.get();
            } else {
                cp->sock = &c;
            }
            cp->sock->setOnReadable([cp] { cp->onReadable(); });
            cp->sendRequest();
        });
        conns_.push_back(std::move(conn));
    }
}

void
KvClient::measureStart()
{
    measuring_ = true;
    windowResponses_ = 0;
    meter_.start(node_.sim().now());
}

void
KvClient::measureStop()
{
    measuring_ = false;
    meter_.stop(node_.sim().now());
}

void
KvClient::Conn::sendRequest()
{
    uint32_t id = static_cast<uint32_t>(
        cli->rng_.below(std::min<uint64_t>(cli->cfg_.keyCount,
                                           cli->values_.count())));
    value = &cli->values_.get(id);
    std::string req = strprintf("GET %u\r\n", id);
    requestStart = cli->node_.sim().now();
    awaitingHeader = true;
    hdrBuf.clear();
    size_t sent = sock->send(
        ByteView(reinterpret_cast<const uint8_t *>(req.data()), req.size()));
    ANIC_ASSERT(sent == req.size());
}

void
KvClient::Conn::onReadable()
{
    while (sock->readable()) {
        tcp::RxSegment seg = sock->pop();
        size_t off = 0;
        if (awaitingHeader) {
            hdrBuf.append(reinterpret_cast<const char *>(seg.data.data()),
                          seg.data.size());
            size_t end = hdrBuf.find("\r\n");
            if (end == std::string::npos)
                continue;
            ANIC_ASSERT(hdrBuf.rfind("VALUE ", 0) == 0);
            bodyRemaining = std::strtoull(hdrBuf.c_str() + 6, nullptr, 10);
            bodyOffset = 0;
            awaitingHeader = false;
            size_t consumed = seg.data.size() - (hdrBuf.size() - (end + 2));
            off = consumed;
            hdrBuf.clear();
        }
        if (!awaitingHeader && off < seg.data.size()) {
            size_t n = std::min<uint64_t>(seg.data.size() - off,
                                          bodyRemaining);
            if (cli->cfg_.verifyContent &&
                !checkDeterministic(ByteView(seg.data).subspan(off, n),
                                    value->seed, value->lba + bodyOffset)) {
                cli->stats_.corruptions++;
            }
            bodyRemaining -= n;
            bodyOffset += n;
            cli->stats_.bodyBytes += n;
            cli->meter_.add(n);
            if (bodyRemaining == 0) {
                cli->stats_.responses++;
                if (cli->measuring_) {
                    cli->windowResponses_++;
                    cli->stats_.latencyUs.add(
                        sim::ticksToSeconds(cli->node_.sim().now() -
                                            requestStart) *
                        1e6);
                }
                sendRequest();
            }
        }
    }
}

} // namespace anic::app
