#include "app/storage_service.hh"

#include "util/panic.hh"

namespace anic::app {

StorageService::StorageService(core::Node &node, host::FileStore &files,
                               Config cfg)
    : node_(node), files_(files), cfg_(std::move(cfg)),
      cache_(cfg_.pageCacheBytes), scope_(node.subScope("storage"))
{
    scope_.link("cacheHits", hits_);
    scope_.link("cacheMisses", misses_);
    scope_.link("remoteBytesRead", remoteBytes_);
    scope_.link("nvme.readsCompleted", nvmeAgg_.readsCompleted);
    scope_.link("nvme.writesCompleted", nvmeAgg_.writesCompleted);
    scope_.link("nvme.failures", nvmeAgg_.failures);
    scope_.link("nvme.dataPdusRx", nvmeAgg_.dataPdusRx);
    scope_.link("nvme.crcSkipped", nvmeAgg_.crcSkipped);
    scope_.link("nvme.crcSoftware", nvmeAgg_.crcSoftware);
    scope_.link("nvme.crcFailures", nvmeAgg_.crcFailures);
    scope_.link("nvme.bytesPlaced", nvmeAgg_.bytesPlaced);
    scope_.link("nvme.bytesCopied", nvmeAgg_.bytesCopied);
    scope_.link("nvme.resyncRequests", nvmeAgg_.resyncRequests);
    scope_.link("nvme.resyncConfirmed", nvmeAgg_.resyncConfirmed);
    tls::linkTlsStats(scope_, "tls", tlsAgg_);
}

void
StorageService::prewarm()
{
    for (size_t i = 0; i < files_.count(); i++) {
        const host::File &f = files_.get(static_cast<uint32_t>(i));
        cache_.insert(f.id, 0, f.size);
    }
}

void
StorageService::connectRemote(net::IpAddr localIp, net::IpAddr targetIp,
                              uint16_t port)
{
    remotes_.resize(node_.coreCount());
    for (int i = 0; i < node_.coreCount(); i++) {
        Remote &r = remotes_[i];
        tcp::TcpConnection &c = node_.stack().connect(
            localIp, targetIp, port, node_.tcpConfig(), &node_.core(i));
        r.conn = &c;
        c.setOnConnected([this, &r, &c] {
            if (cfg_.tlsTransport) {
                tls::TlsConfig tcfg = cfg_.tlsCfg;
                tcfg.aggregate = &tlsAgg_;
                r.tls = std::make_unique<tls::TlsSocket>(
                    c, tls::SessionKeys::derive(cfg_.tlsSecret, true), tcfg);
                r.tls->enableOffload(node_.device());
                r.queue = std::make_unique<nvmetcp::NvmeHostQueue>(
                    *r.tls, cfg_.wire, cfg_.offload, &nvmeAgg_);
                if (cfg_.offloadEnabled && tcfg.rxOffload)
                    r.queue->enableOffloadOverTls(*r.tls);
            } else {
                r.queue = std::make_unique<nvmetcp::NvmeHostQueue>(
                    c, cfg_.wire, cfg_.offload, &nvmeAgg_);
                if (cfg_.offloadEnabled)
                    r.queue->enableOffload(node_.device(), c);
            }
            r.ready = true;
        });
    }
}

bool
StorageService::ready() const
{
    if (remotes_.empty())
        return true;
    for (const Remote &r : remotes_) {
        if (!r.ready)
            return false;
    }
    return true;
}

nvmetcp::NvmeHostQueue *
StorageService::queue(int core)
{
    if (remotes_.empty())
        return nullptr;
    return remotes_[static_cast<size_t>(core) % remotes_.size()].queue.get();
}

void
StorageService::fetch(const host::File &file, host::Core &core,
                      std::function<void(bool ok)> done)
{
    const host::CycleModel &m = core.model();
    core.charge(m.pageCachePer4k *
                static_cast<double>(file.size / host::PageCache::kPageSize + 1));
    if (cache_.contains(file.id, 0, file.size)) {
        hits_++;
        cache_.touch(file.id, 0, file.size);
        done(true);
        return;
    }
    misses_++;

    nvmetcp::NvmeHostQueue *q = queue(core.id());
    if (q == nullptr) {
        // No backing store: treat as resident (pure page-cache mode).
        cache_.insert(file.id, 0, file.size);
        done(true);
        return;
    }
    remoteBytes_ += file.size;
    q->read(file.lba, static_cast<uint32_t>(file.size),
            [this, &file, done = std::move(done)](
                bool ok, host::BlockBufferPtr) {
                if (ok)
                    cache_.insert(file.id, 0, file.size);
                done(ok);
            });
}

} // namespace anic::app
