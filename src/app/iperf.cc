#include "app/iperf.hh"

#include "util/panic.hh"

namespace anic::app {

IperfRun::IperfRun(core::Node &sender, net::IpAddr senderIp,
                   core::Node &receiver, net::IpAddr receiverIp,
                   IperfConfig cfg)
    : sender_(sender), senderIp_(senderIp), receiver_(receiver),
      receiverIp_(receiverIp), cfg_(std::move(cfg)),
      scope_(receiver.subScope("iperf")), txScope_(sender.subScope("iperfTx"))
{
    cfg_.serverTls.aggregate = &rxTlsAgg_;
    cfg_.clientTls.aggregate = &txTlsAgg_;
    scope_.link("bytesReceived", bytesReceived_);
    scope_.link("corruptions", corruptions_);
    scope_.link("goodput", meter_);
    tls::linkTlsStats(scope_, "tls", rxTlsAgg_);
    tls::linkTlsStats(txScope_, "tls", txTlsAgg_);
}

void
IperfRun::start()
{
    // Server side: one listener; each accepted connection binds to
    // the next stream (in connect order, which the simulator makes
    // deterministic).
    receiver_.stack().listen(
        cfg_.port, receiver_.tcpConfig(), [this](tcp::TcpConnection &c) {
            // Accept order is not connect order when handshake packets
            // are lost, so all streams share one key/content seed.
            size_t idx = static_cast<size_t>(acceptIdx_++);
            ANIC_ASSERT(idx < streams_.size());
            Stream *s = streams_[idx].get();
            if (cfg_.tlsEnabled) {
                s->rxTls = std::make_unique<tls::TlsSocket>(
                    c, tls::SessionKeys::derive(cfg_.tlsSecret, false),
                    cfg_.serverTls);
                s->rxTls->enableOffload(receiver_.device());
                s->rx = s->rxTls.get();
            } else {
                s->rx = &c;
            }
            s->rx->setOnReadable([this, s] {
                while (s->rx->readable()) {
                    tcp::RxSegment seg = s->rx->pop();
                    if (cfg_.verifyContent &&
                        !checkDeterministic(seg.data, s->seed,
                                            seg.streamOff)) {
                        corruptions_++;
                    }
                    s->received += seg.data.size();
                    bytesReceived_ += seg.data.size();
                    meter_.add(seg.data.size());
                }
            });
        });

    for (int i = 0; i < cfg_.streams; i++) {
        auto stream = std::make_unique<Stream>();
        stream->run = this;
        stream->seed = 1000; // shared across streams; see accept note
        Stream *sp = stream.get();
        streams_.push_back(std::move(stream));

        tcp::TcpConnection &c = sender_.stack().connect(
            senderIp_, receiverIp_, cfg_.port, sender_.tcpConfig());
        sp->rawTx = &c;
        c.setOnConnected([this, sp, &c] {
            if (cfg_.tlsEnabled) {
                sp->txTls = std::make_unique<tls::TlsSocket>(
                    c, tls::SessionKeys::derive(cfg_.tlsSecret, true),
                    cfg_.clientTls);
                sp->txTls->enableOffload(sender_.device());
                sp->tx = sp->txTls.get();
            } else {
                sp->tx = &c;
            }
            sp->tx->setOnWritable([sp] { sp->pumpSend(); });
            connected_++;
            sp->pumpSend();
        });
    }
}

void
IperfRun::Stream::pumpSend()
{
    // One application message per work item (a send() syscall): the
    // transport consumes what it can, and the continuation is
    // re-posted so receive/ack processing on the same core
    // interleaves — like a real sender blocking in send() while
    // softirqs run. Writing everything in one item would starve ack
    // processing and collapse the congestion window.
    size_t n = run->cfg_.sendChunk;
    Bytes chunk(n);
    fillDeterministic(chunk, seed, sent);
    size_t acc = tx->send(chunk);
    if (!run->cfg_.tlsEnabled && acc > 0) {
        // Plain TCP: the socket layer does not charge; account the
        // send syscall and the user->skb copy so the "tcp" baseline
        // is not artificially free.
        const host::CycleModel &m = tx->core().model();
        tx->core().charge(m.syscallCost + m.copyLlcPerByte * acc);
    }
    sent += acc;
    if (acc == n)
        tx->core().post([this] { pumpSend(); });
    // else: resume via the writable callback.
}

void
IperfRun::measureStart()
{
    meter_.start(receiver_.sim().now());
}

void
IperfRun::measureStop()
{
    meter_.stop(receiver_.sim().now());
}

tls::TlsStats
IperfRun::receiverTlsStats() const
{
    tls::TlsStats total;
    for (const auto &s : streams_) {
        if (!s->rxTls)
            continue;
        const tls::TlsStats &st = s->rxTls->stats();
        total.recordsRx += st.recordsRx;
        total.rxFullyOffloaded += st.rxFullyOffloaded;
        total.rxPartiallyOffloaded += st.rxPartiallyOffloaded;
        total.rxNotOffloaded += st.rxNotOffloaded;
        total.tagFailures += st.tagFailures;
        total.rxResyncRequests += st.rxResyncRequests;
        total.rxResyncConfirmed += st.rxResyncConfirmed;
        total.plaintextBytesRx += st.plaintextBytesRx;
    }
    return total;
}

tls::TlsStats
IperfRun::senderTlsStats() const
{
    tls::TlsStats total;
    for (const auto &s : streams_) {
        if (!s->txTls)
            continue;
        const tls::TlsStats &st = s->txTls->stats();
        total.recordsTx += st.recordsTx;
        total.txMsgStateUpcalls += st.txMsgStateUpcalls;
        total.plaintextBytesTx += st.plaintextBytesTx;
    }
    return total;
}

} // namespace anic::app
