/**
 * @file
 * HTTP substrate: an nginx-like static-file server and a wrk-like
 * keep-alive client, over plain TCP or TLS (software or offloaded) —
 * the macrobenchmark pair behind Figures 12-14 and 19.
 *
 * The protocol is minimal HTTP/1.1: "GET /<fileId> HTTP/1.1" and a
 * "200 OK" response with Content-Length; bodies are served with
 * sendfile semantics from the page cache / remote NVMe-TCP device.
 */

#ifndef ANIC_APP_HTTP_HH
#define ANIC_APP_HTTP_HH

#include "app/storage_service.hh"
#include "sim/registry.hh"
#include "util/rand.hh"

namespace anic::app {

struct HttpServerConfig
{
    bool tlsEnabled = false;
    tls::TlsConfig tlsCfg;
    uint64_t tlsSecret = 0x5ec;
};

struct HttpServerStats
{
    sim::Counter requests;
    sim::Counter bytesSent;
    sim::Counter errors;
};

class HttpServer
{
  public:
    HttpServer(core::Node &node, uint16_t port, StorageService &storage,
               HttpServerConfig cfg);

    const HttpServerStats &stats() const { return stats_; }

  private:
    struct Conn
    {
        HttpServer *srv = nullptr;
        tcp::TcpConnection *raw = nullptr;
        std::unique_ptr<tls::TlsSocket> tlsSock;
        tcp::StreamSocket *sock = nullptr;

        std::string reqBuf;
        Bytes hdr;
        size_t hdrSent = 0;
        const host::File *file = nullptr;
        uint64_t bodySent = 0;
        bool responding = false;

        void onReadable();
        void maybeStartRequest();
        void pump();
    };

    void accept(tcp::TcpConnection &c);

    core::Node &node_;
    StorageService &storage_;
    HttpServerConfig cfg_;
    HttpServerStats stats_;
    sim::StatsScope scope_;  ///< "<node>.http"
    tls::TlsStats tlsAgg_;   ///< across accepted TLS sockets
    std::vector<std::unique_ptr<Conn>> conns_;
};

struct HttpClientConfig
{
    int connections = 16;
    bool tlsEnabled = false;
    tls::TlsConfig tlsCfg; ///< client side (usually software crypto)
    uint64_t tlsSecret = 0x5ec;
    std::vector<uint32_t> fileIds; ///< request targets (uniform random)
    uint64_t seed = 99;
    bool verifyContent = true;
    int requestsPerConn = -1; ///< -1 = unlimited (run by time window)
    /** Connection-establishment ramp: opening tens of thousands of
     *  connections in one instant overflows SYN queues everywhere
     *  (real load generators ramp too). */
    sim::Tick staggerPerConn = 500 * sim::kNanosecond;
};

struct HttpClientStats
{
    sim::Counter responses;
    sim::Counter bodyBytes;
    sim::Counter corruptions;
    sim::Distribution latencyUs; ///< per-request latency (measured window)
};

class HttpClient
{
  public:
    HttpClient(core::Node &node, net::IpAddr localIp, net::IpAddr serverIp,
               uint16_t port, const host::FileStore &files,
               HttpClientConfig cfg);

    /** Opens the connections and starts the request loops. */
    void start();

    /** Measurement window control (excludes warm-up). */
    void measureStart();
    void measureStop();

    const HttpClientStats &stats() const { return stats_; }
    const sim::RateMeter &bodyMeter() const { return meter_; }
    uint64_t windowResponses() const { return windowResponses_; }
    int connected() const { return connected_; }

  private:
    struct Conn;
    void openConnection(Conn &conn);

    struct Conn
    {
        HttpClient *cli = nullptr;
        tcp::TcpConnection *raw = nullptr;
        std::unique_ptr<tls::TlsSocket> tlsSock;
        tcp::StreamSocket *sock = nullptr;

        std::string hdrBuf;
        bool awaitingHeader = true;
        uint64_t bodyRemaining = 0;
        uint64_t bodyOffset = 0;
        const host::File *file = nullptr;
        sim::Tick requestStart = 0;
        int requestsLeft = -1;

        void sendRequest();
        void onReadable();
    };

    core::Node &node_;
    net::IpAddr localIp_;
    net::IpAddr serverIp_;
    uint16_t port_;
    const host::FileStore &files_;
    HttpClientConfig cfg_;
    Rng rng_;
    std::vector<std::unique_ptr<Conn>> conns_;
    int connected_ = 0;

    HttpClientStats stats_;
    sim::RateMeter meter_;
    sim::StatsScope scope_;  ///< "<node>.httpClient"
    tls::TlsStats tlsAgg_;   ///< across client TLS sockets
    bool measuring_ = false;
    uint64_t windowResponses_ = 0;
};

} // namespace anic::app

#endif // ANIC_APP_HTTP_HH
