/**
 * @file
 * One-time CPU feature detection and crypto kernel selection.
 *
 * The crypto primitives (AES-GCM, GHASH, CRC32C) exist in two builds:
 * the portable scalar reference kernels and, on x86 machines whose
 * compiler and CPU support it, hardware kernels using AES-NI,
 * PCLMULQDQ and SSE4.2. Selection happens once at startup:
 *
 *   - compile time: the accelerated translation units are only built
 *     when the toolchain targets x86 and accepts the ISA flags
 *     (ANIC_HAVE_X86_CRYPTO);
 *   - run time: CPUID must report the extensions;
 *   - override: ANIC_CRYPTO_IMPL=scalar|hw forces a kernel (a forced
 *     "hw" on an unsupported machine warns and falls back to scalar).
 *
 * Which kernel runs never changes simulated results: both produce
 * bit-identical tags/CRCs and the simulator's accounted cycle costs
 * come from the cycle model, not wall-clock.
 */

#ifndef ANIC_CRYPTO_CPU_HH
#define ANIC_CRYPTO_CPU_HH

namespace anic::crypto {

/** ISA extensions reported by CPUID (all false on non-x86). */
struct CpuFeatures
{
    bool aesni = false;
    bool pclmul = false;
    bool sse42 = false;
    bool avx2 = false;
};

/** Detected once, cached for the process lifetime. */
const CpuFeatures &cpuFeatures();

enum class CryptoImpl
{
    Scalar, ///< portable reference kernels
    Hw,     ///< AES-NI/PCLMUL GCM, SSE4.2 CRC32C
};

const char *cryptoImplName(CryptoImpl impl);

/** True when the accelerated translation units were compiled in. */
bool hwCryptoCompiled();

/** True when compiled in AND this CPU reports AES-NI+PCLMUL+SSE4.2. */
bool hwCryptoSupported();

/**
 * The kernel set new crypto contexts bind to: hardware when supported,
 * subject to the ANIC_CRYPTO_IMPL environment override. Resolved on
 * first use and constant afterwards.
 */
CryptoImpl activeCryptoImpl();

inline const char *
activeCryptoImplName()
{
    return cryptoImplName(activeCryptoImpl());
}

} // namespace anic::crypto

#endif // ANIC_CRYPTO_CPU_HH
