#include "crypto/crc32c.hh"

#include <array>

#include "crypto/kernels.hh"

namespace anic::crypto {

namespace {

constexpr uint32_t kPolyReflected = 0x82f63b78u;

struct Tables
{
    // Slicing-by-8: table[k][b] advances the CRC by 8 bytes at a time.
    uint32_t t[8][256];

    Tables()
    {
        for (uint32_t i = 0; i < 256; i++) {
            uint32_t crc = i;
            for (int bit = 0; bit < 8; bit++)
                crc = (crc >> 1) ^ ((crc & 1) ? kPolyReflected : 0);
            t[0][i] = crc;
        }
        for (uint32_t i = 0; i < 256; i++) {
            uint32_t crc = t[0][i];
            for (int k = 1; k < 8; k++) {
                crc = t[0][crc & 0xff] ^ (crc >> 8);
                t[k][i] = crc;
            }
        }
    }
};

const Tables &
tables()
{
    static const Tables tbl;
    return tbl;
}

} // namespace

namespace detail {

uint32_t
crc32cScalarUpdate(uint32_t crc, const uint8_t *p, size_t n)
{
    const Tables &tbl = tables();

    while (n >= 8) {
        uint32_t lo;
        uint32_t hi;
        std::memcpy(&lo, p, 4);
        std::memcpy(&hi, p + 4, 4);
        lo ^= crc;
        crc = tbl.t[7][lo & 0xff] ^ tbl.t[6][(lo >> 8) & 0xff] ^
              tbl.t[5][(lo >> 16) & 0xff] ^ tbl.t[4][lo >> 24] ^
              tbl.t[3][hi & 0xff] ^ tbl.t[2][(hi >> 8) & 0xff] ^
              tbl.t[1][(hi >> 16) & 0xff] ^ tbl.t[0][hi >> 24];
        p += 8;
        n -= 8;
    }
    while (n--) {
        crc = tbl.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    }
    return crc;
}

} // namespace detail

void
Crc32c::update(ByteView data)
{
    if (data.empty())
        return;
    // Kernel resolved once at startup (CPUID + ANIC_CRYPTO_IMPL).
    static const auto *ops = detail::hwOps();
    state_ = ops != nullptr
                 ? ops->crc32cUpdate(state_, data.data(), data.size())
                 : detail::crc32cScalarUpdate(state_, data.data(),
                                              data.size());
}

uint32_t
Crc32c::compute(ByteView data)
{
    Crc32c c;
    c.update(data);
    return c.value();
}

} // namespace anic::crypto
