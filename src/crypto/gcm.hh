/**
 * @file
 * AES-128-GCM (NIST SP 800-38D) with a streaming interface.
 *
 * Streaming matters here: both kTLS software fallback and the NIC
 * offload engine process a TLS record packet-by-packet, updating the
 * GCM state incrementally and only producing/validating the tag when
 * the final record bytes arrive.
 */

#ifndef ANIC_CRYPTO_GCM_HH
#define ANIC_CRYPTO_GCM_HH

#include <cstdint>

#include "crypto/aes.hh"
#include "util/bytes.hh"

namespace anic::crypto {

/**
 * GHASH over GF(2^128) with 4-bit tables (mbedTLS-style). Exposed
 * separately so tests can cross-check the table implementation against
 * the bitwise reference.
 */
class Ghash
{
  public:
    Ghash() = default;

    /** Initializes the tables from the hash subkey H (16 bytes). */
    void setH(const uint8_t h[16]);

    /** Absorbs exactly one 16-byte block. */
    void absorbBlock(const uint8_t block[16]);

    /** Absorbs data, zero-padding the final partial block. */
    void absorbPadded(ByteView data);

    /** Current GHASH accumulator (16 bytes). */
    void digest(uint8_t out[16]) const { std::memcpy(out, y_, 16); }

    void reset() { std::memset(y_, 0, 16); }

    /** Bitwise reference multiply: out = x * y in GF(2^128). */
    static void gf128MulBitwise(const uint8_t x[16], const uint8_t y[16],
                                uint8_t out[16]);

  private:
    void mulH(uint8_t x[16]) const;

    uint64_t hl_[16] = {0};
    uint64_t hh_[16] = {0};
    uint8_t y_[16] = {0};
};

/**
 * Streaming AES-128-GCM encrypt/decrypt context for 96-bit IVs.
 *
 * Usage: setKey() once per key; then per message start() -> any number
 * of update() calls -> finishTag()/checkTag(). A context can also be
 * "fast-forwarded" only in the sense the paper requires: processing
 * always starts at a message boundary, never mid-message.
 */
class AesGcm
{
  public:
    static constexpr size_t kTagSize = 16;
    static constexpr size_t kIvSize = 12;

    AesGcm() = default;
    explicit AesGcm(ByteView key) { setKey(key); }

    void setKey(ByteView key);

    /** Starts a message with a 96-bit IV and associated data. */
    void start(ByteView iv, ByteView aad);

    /** Encrypts @p in into @p out (sizes equal); any chunking. */
    void encryptUpdate(ByteView in, ByteSpan out);

    /** Decrypts @p in into @p out (sizes equal); any chunking. */
    void decryptUpdate(ByteView in, ByteSpan out);

    /** Finalizes and writes the 16-byte tag. */
    void finishTag(ByteSpan tag);

    /** Finalizes and constant-time-compares against @p tag. */
    bool checkTag(ByteView tag);

    /**
     * One-shot helpers (allocate the output buffer).
     * sealed = ciphertext || tag; open() returns false on tag failure.
     */
    Bytes seal(ByteView iv, ByteView aad, ByteView plaintext);
    bool open(ByteView iv, ByteView aad, ByteView sealed, Bytes &plaintext);

  private:
    void ctrBlock(uint8_t out[16]);
    void cryptUpdate(ByteView in, ByteSpan out, bool encrypt);

    Aes128 aes_;
    Ghash ghash_;
    uint8_t j0_[16];       // pre-counter block (for the tag)
    uint8_t ctr_[16];      // running counter block
    uint8_t ks_[16];       // current keystream block
    size_t ksUsed_ = 16;   // consumed bytes of ks_
    uint8_t ghashCarry_[16]; // partial ciphertext block awaiting ghash
    size_t carryLen_ = 0;
    uint64_t aadLen_ = 0;
    uint64_t dataLen_ = 0;
    bool keySet_ = false;
};

/**
 * Raw AES-CTR transform using GCM's keystream layout (96-bit IV,
 * counter block starts at 2) beginning at an arbitrary byte offset of
 * the message. Used by software fallback to re-encrypt NIC-decrypted
 * packet ranges so a partially-offloaded record can be authenticated
 * (paper §5.2 "Partial offload"), and by placement-style engines that
 * resume mid-message.
 */
void aesGcmCtrAtOffset(const Aes128 &aes, ByteView iv, uint64_t byteOff,
                       ByteSpan data);

} // namespace anic::crypto

#endif // ANIC_CRYPTO_GCM_HH
