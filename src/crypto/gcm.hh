/**
 * @file
 * AES-128-GCM (NIST SP 800-38D) with a streaming interface.
 *
 * Streaming matters here: both kTLS software fallback and the NIC
 * offload engine process a TLS record packet-by-packet, updating the
 * GCM state incrementally and only producing/validating the tag when
 * the final record bytes arrive.
 *
 * Each context binds to a kernel set at setKey()/setH() time: the
 * portable scalar reference kernels, or (default, when the machine
 * supports it) the AES-NI/PCLMUL kernels dispatched through
 * crypto/cpu.hh. Both produce bit-identical output; tests force each
 * variant explicitly to cross-check them.
 */

#ifndef ANIC_CRYPTO_GCM_HH
#define ANIC_CRYPTO_GCM_HH

#include <cstdint>

#include "crypto/aes.hh"
#include "crypto/cpu.hh"
#include "util/bytes.hh"

namespace anic::crypto {

namespace detail {
struct HwOps;
}

/**
 * GHASH over GF(2^128); scalar kernel uses 4-bit tables (mbedTLS-
 * style), hardware kernel uses PCLMULQDQ with aggregated reduction.
 * Exposed separately so tests can cross-check both implementations
 * against the bitwise reference.
 */
class Ghash
{
  public:
    Ghash() = default;

    /** Initializes from the hash subkey H using the active kernels. */
    void setH(const uint8_t h[16]);

    /** Same, with an explicit kernel choice (tests/benches). */
    void setH(const uint8_t h[16], CryptoImpl impl);

    /** Absorbs exactly one 16-byte block. */
    void absorbBlock(const uint8_t block[16]);

    /** Absorbs data, zero-padding the final partial block. */
    void absorbPadded(ByteView data);

    /** Current GHASH accumulator (16 bytes). */
    void digest(uint8_t out[16]) const { std::memcpy(out, y_, 16); }

    void reset() { std::memset(y_, 0, 16); }

    /** Bitwise reference multiply: out = x * y in GF(2^128). */
    static void gf128MulBitwise(const uint8_t x[16], const uint8_t y[16],
                                uint8_t out[16]);

  private:
    friend class AesGcm;

    void mulH(uint8_t x[16]) const;

    const detail::HwOps *hw_ = nullptr; // null: scalar tables
    uint64_t hl_[16] = {0};
    uint64_t hh_[16] = {0};
    alignas(16) uint8_t hpow_[8][16] = {{0}}; // H^1..H^8 (hw kernels)
    uint8_t y_[16] = {0};
};

/**
 * Streaming AES-128-GCM encrypt/decrypt context for 96-bit IVs.
 *
 * Usage: setKey() once per key; then per message start() -> any number
 * of update() calls -> finishTag()/checkTag(). A context can also be
 * "fast-forwarded" only in the sense the paper requires: processing
 * always starts at a message boundary, never mid-message.
 */
class AesGcm
{
  public:
    static constexpr size_t kTagSize = 16;
    static constexpr size_t kIvSize = 12;

    AesGcm() = default;
    explicit AesGcm(ByteView key) { setKey(key); }
    AesGcm(ByteView key, CryptoImpl impl) { setKey(key, impl); }

    /** Binds the key using the active kernel set. */
    void setKey(ByteView key);

    /** Same, with an explicit kernel choice (tests/benches). */
    void setKey(ByteView key, CryptoImpl impl);

    /** The kernel set this context is bound to. */
    CryptoImpl impl() const
    {
        return hw_ != nullptr ? CryptoImpl::Hw : CryptoImpl::Scalar;
    }

    /** Starts a message with a 96-bit IV and associated data. */
    void start(ByteView iv, ByteView aad);

    /** Encrypts @p in into @p out (sizes equal); any chunking. */
    void encryptUpdate(ByteView in, ByteSpan out);

    /** Decrypts @p in into @p out (sizes equal); any chunking. */
    void decryptUpdate(ByteView in, ByteSpan out);

    /** Finalizes and writes the 16-byte tag. */
    void finishTag(ByteSpan tag);

    /** Finalizes and constant-time-compares against @p tag. */
    bool checkTag(ByteView tag);

    /**
     * One-shot helpers (allocate the output buffer).
     * sealed = ciphertext || tag; open() returns false on tag failure.
     */
    Bytes seal(ByteView iv, ByteView aad, ByteView plaintext);
    bool open(ByteView iv, ByteView aad, ByteView sealed, Bytes &plaintext);

  private:
    void ctrBlock(uint8_t out[16]);
    void encryptBlock(const uint8_t in[16], uint8_t out[16]) const;
    void cryptUpdate(ByteView in, ByteSpan out, bool encrypt);

    Aes128 aes_;
    Ghash ghash_;
    const detail::HwOps *hw_ = nullptr; // null: scalar kernels
    alignas(16) uint8_t rk_[11][16];    // round keys (hw kernels)
    uint8_t j0_[16];       // pre-counter block (for the tag)
    uint8_t ctr_[16];      // running counter block
    uint8_t ks_[16];       // current keystream block
    size_t ksUsed_ = 16;   // consumed bytes of ks_
    uint8_t ghashCarry_[16]; // partial ciphertext block awaiting ghash
    size_t carryLen_ = 0;
    uint64_t aadLen_ = 0;
    uint64_t dataLen_ = 0;
    bool keySet_ = false;
};

/**
 * Raw AES-CTR transform using GCM's keystream layout (96-bit IV,
 * counter block starts at 2) beginning at an arbitrary byte offset of
 * the message. Used by software fallback to re-encrypt NIC-decrypted
 * packet ranges so a partially-offloaded record can be authenticated
 * (paper §5.2 "Partial offload"), and by placement-style engines that
 * resume mid-message. Routed through the dispatched CTR kernel so the
 * NIC resync path gets the hardware speed too.
 */
void aesGcmCtrAtOffset(const Aes128 &aes, ByteView iv, uint64_t byteOff,
                       ByteSpan data);

/** Same, with an explicit kernel choice (tests/benches). */
void aesGcmCtrAtOffset(const Aes128 &aes, ByteView iv, uint64_t byteOff,
                       ByteSpan data, CryptoImpl impl);

} // namespace anic::crypto

#endif // ANIC_CRYPTO_GCM_HH
