/**
 * @file
 * CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) as
 * used by NVMe-TCP header/data digests (RFC 3385 iSCSI polynomial).
 */

#ifndef ANIC_CRYPTO_CRC32C_HH
#define ANIC_CRYPTO_CRC32C_HH

#include <cstdint>

#include "util/bytes.hh"

namespace anic::crypto {

/**
 * Incremental CRC32C. The running value is kept in "raw" form (without
 * the final bit-inversion) so computation can be split across packets,
 * exactly like the NIC does when a capsule spans TCP segments.
 */
class Crc32c
{
  public:
    Crc32c() = default;

    /** Feeds more bytes into the running CRC. */
    void update(ByteView data);

    /** Finalized CRC value (applies the output inversion). */
    uint32_t value() const { return ~state_; }

    /** Resets to the initial state. */
    void reset() { state_ = 0xffffffffu; }

    /** One-shot convenience. */
    static uint32_t compute(ByteView data);

  private:
    uint32_t state_ = 0xffffffffu;
};

} // namespace anic::crypto

#endif // ANIC_CRYPTO_CRC32C_HH
