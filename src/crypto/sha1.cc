#include "crypto/sha1.hh"

#include "util/panic.hh"

namespace anic::crypto {

namespace {

inline uint32_t
rotl32(uint32_t x, int n)
{
    return (x << n) | (x >> (32 - n));
}

} // namespace

void
Sha1::reset()
{
    h_[0] = 0x67452301u;
    h_[1] = 0xefcdab89u;
    h_[2] = 0x98badcfeu;
    h_[3] = 0x10325476u;
    h_[4] = 0xc3d2e1f0u;
    totalLen_ = 0;
    bufLen_ = 0;
}

void
Sha1::processBlock(const uint8_t *block)
{
    uint32_t w[80];
    for (int i = 0; i < 16; i++)
        w[i] = getBe32(block + 4 * i);
    for (int i = 16; i < 80; i++)
        w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    uint32_t a = h_[0];
    uint32_t b = h_[1];
    uint32_t c = h_[2];
    uint32_t d = h_[3];
    uint32_t e = h_[4];

    for (int i = 0; i < 80; i++) {
        uint32_t f;
        uint32_t k;
        if (i < 20) {
            f = (b & c) | ((~b) & d);
            k = 0x5a827999u;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1u;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdcu;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6u;
        }
        uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl32(b, 30);
        b = a;
        a = tmp;
    }

    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
}

void
Sha1::update(ByteView data)
{
    totalLen_ += data.size();
    size_t off = 0;
    if (bufLen_ > 0) {
        size_t take = std::min(kBlockSize - bufLen_, data.size());
        std::memcpy(buf_ + bufLen_, data.data(), take);
        bufLen_ += take;
        off += take;
        if (bufLen_ == kBlockSize) {
            processBlock(buf_);
            bufLen_ = 0;
        }
    }
    while (off + kBlockSize <= data.size()) {
        processBlock(data.data() + off);
        off += kBlockSize;
    }
    if (off < data.size()) {
        std::memcpy(buf_, data.data() + off, data.size() - off);
        bufLen_ = data.size() - off;
    }
}

void
Sha1::final(ByteSpan out)
{
    ANIC_ASSERT(out.size() >= kDigestSize);
    uint64_t bit_len = totalLen_ * 8;

    uint8_t pad[kBlockSize * 2] = {0x80};
    size_t pad_len = (bufLen_ < 56) ? (56 - bufLen_) : (120 - bufLen_);
    update(ByteView(pad, pad_len));
    uint8_t len_be[8];
    putBe64(len_be, bit_len);
    // update() counted the padding in totalLen_, which is fine: the
    // length word was captured before padding.
    update(ByteView(len_be, 8));
    ANIC_ASSERT(bufLen_ == 0);

    for (int i = 0; i < 5; i++)
        putBe32(out.data() + 4 * i, h_[i]);
    reset();
}

std::array<uint8_t, Sha1::kDigestSize>
Sha1::compute(ByteView data)
{
    Sha1 s;
    s.update(data);
    std::array<uint8_t, kDigestSize> out;
    s.final(out);
    return out;
}

std::array<uint8_t, Sha1::kDigestSize>
hmacSha1(ByteView key, ByteView msg)
{
    uint8_t k[Sha1::kBlockSize] = {0};
    if (key.size() > Sha1::kBlockSize) {
        auto kh = Sha1::compute(key);
        std::memcpy(k, kh.data(), kh.size());
    } else {
        std::memcpy(k, key.data(), key.size());
    }

    uint8_t ipad[Sha1::kBlockSize];
    uint8_t opad[Sha1::kBlockSize];
    for (size_t i = 0; i < Sha1::kBlockSize; i++) {
        ipad[i] = k[i] ^ 0x36;
        opad[i] = k[i] ^ 0x5c;
    }

    Sha1 inner;
    inner.update(ByteView(ipad, sizeof(ipad)));
    inner.update(msg);
    std::array<uint8_t, Sha1::kDigestSize> inner_digest;
    inner.final(inner_digest);

    Sha1 outer;
    outer.update(ByteView(opad, sizeof(opad)));
    outer.update(inner_digest);
    std::array<uint8_t, Sha1::kDigestSize> out;
    outer.final(out);
    return out;
}

} // namespace anic::crypto
