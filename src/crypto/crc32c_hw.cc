/**
 * @file
 * Hardware CRC32C using the SSE4.2 CRC32 instruction. A single
 * dependent chain of CRC32Q retires one 8-byte step every ~3 cycles,
 * so large buffers are split into three independent streams whose
 * partial CRCs are recombined with precomputed zero-extension
 * operators (the classic "shift by N zero bytes" GF(2) matrix trick,
 * built once at startup by repeated matrix squaring). Three stream
 * block sizes cover large buffers, mid-size PDUs, and packet-sized
 * tails. Compiled with -msse4.2 for this file only; reached through
 * the dispatch table in cpu.cc.
 */

#include <nmmintrin.h>

#include <cstring>

#include "crypto/kernels.hh"

namespace anic::crypto::detail::x86 {

namespace {

constexpr uint32_t kPolyReflected = 0x82f63b78u;

// Stream block sizes for the 3-way interleave. Each tier processes
// 3*size bytes per pass; smaller tiers mop up what the bigger ones
// leave so packet-sized inputs (~1.5 KiB) still interleave.
constexpr size_t kLongBlock = 8192;
constexpr size_t kShortBlock = 256;
constexpr size_t kMiniBlock = 64;

/** vec * mat over GF(2): mat rows are the images of each input bit. */
inline uint32_t
gf2MatrixTimes(const uint32_t mat[32], uint32_t vec)
{
    uint32_t sum = 0;
    for (int i = 0; vec != 0; i++, vec >>= 1) {
        if (vec & 1)
            sum ^= mat[i];
    }
    return sum;
}

inline void
gf2MatrixSquare(uint32_t square[32], const uint32_t mat[32])
{
    for (int i = 0; i < 32; i++)
        square[i] = gf2MatrixTimes(mat, mat[i]);
}

/**
 * Byte-indexed operator advancing a raw CRC over @p len zero bytes:
 * crc' = t[0][crc&0xff] ^ t[1][..] ^ t[2][..] ^ t[3][crc>>24].
 * Combining streams: crc(A||B) = shift(crc(A), len(B)) ^ crcFromZero(B).
 */
struct ZeroShift
{
    uint32_t t[4][256];

    explicit ZeroShift(size_t len)
    {
        // Operator for one zero *bit* (the CRC register step), then
        // square up to one byte, then to len bytes.
        uint32_t odd[32];
        uint32_t even[32];
        odd[0] = kPolyReflected;
        uint32_t row = 1;
        for (int i = 1; i < 32; i++) {
            odd[i] = row;
            row <<= 1;
        }
        gf2MatrixSquare(even, odd); // 2 bits
        gf2MatrixSquare(odd, even); // 4 bits

        const uint32_t *op = nullptr;
        do {
            gf2MatrixSquare(even, odd); // 8, 32, 128, ... bits
            len >>= 1;
            op = even;
            if (len == 0)
                break;
            gf2MatrixSquare(odd, even);
            len >>= 1;
            op = odd;
        } while (len != 0);

        for (uint32_t n = 0; n < 256; n++) {
            t[0][n] = gf2MatrixTimes(op, n);
            t[1][n] = gf2MatrixTimes(op, n << 8);
            t[2][n] = gf2MatrixTimes(op, n << 16);
            t[3][n] = gf2MatrixTimes(op, n << 24);
        }
    }

    uint32_t shift(uint32_t crc) const
    {
        return t[0][crc & 0xff] ^ t[1][(crc >> 8) & 0xff] ^
               t[2][(crc >> 16) & 0xff] ^ t[3][crc >> 24];
    }
};

struct ShiftTables
{
    ZeroShift longShift{kLongBlock};
    ZeroShift shortShift{kShortBlock};
    ZeroShift miniShift{kMiniBlock};
};

const ShiftTables &
shiftTables()
{
    static const ShiftTables t;
    return t;
}

inline uint64_t
load64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

/** One 3-way interleaved pass over 3*block bytes starting at @p p. */
template <size_t Block>
inline uint32_t
crc3way(const ZeroShift &zs, uint32_t crc, const uint8_t *p)
{
    uint64_t c0 = crc;
    uint64_t c1 = 0;
    uint64_t c2 = 0;
    for (size_t i = 0; i < Block; i += 8) {
        c0 = _mm_crc32_u64(c0, load64(p + i));
        c1 = _mm_crc32_u64(c1, load64(p + Block + i));
        c2 = _mm_crc32_u64(c2, load64(p + 2 * Block + i));
    }
    crc = zs.shift(static_cast<uint32_t>(c0)) ^ static_cast<uint32_t>(c1);
    crc = zs.shift(crc) ^ static_cast<uint32_t>(c2);
    return crc;
}

} // namespace

uint32_t
crc32cUpdate(uint32_t crc, const uint8_t *p, size_t n)
{
    if (n == 0)
        return crc;
    const ShiftTables &ts = shiftTables();

    // Align to 8 bytes so the wide loops load aligned-ish words.
    while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
        crc = _mm_crc32_u8(crc, *p++);
        n--;
    }
    while (n >= 3 * kLongBlock) {
        crc = crc3way<kLongBlock>(ts.longShift, crc, p);
        p += 3 * kLongBlock;
        n -= 3 * kLongBlock;
    }
    while (n >= 3 * kShortBlock) {
        crc = crc3way<kShortBlock>(ts.shortShift, crc, p);
        p += 3 * kShortBlock;
        n -= 3 * kShortBlock;
    }
    while (n >= 3 * kMiniBlock) {
        crc = crc3way<kMiniBlock>(ts.miniShift, crc, p);
        p += 3 * kMiniBlock;
        n -= 3 * kMiniBlock;
    }
    uint64_t c = crc;
    while (n >= 8) {
        c = _mm_crc32_u64(c, load64(p));
        p += 8;
        n -= 8;
    }
    crc = static_cast<uint32_t>(c);
    while (n > 0) {
        crc = _mm_crc32_u8(crc, *p++);
        n--;
    }
    return crc;
}

} // namespace anic::crypto::detail::x86
