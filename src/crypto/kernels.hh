/**
 * @file
 * Internal kernel dispatch table shared by the crypto primitives.
 *
 * The scalar reference kernels live in aes.cc/gcm.cc/crc32c.cc; the
 * hardware kernels (AES-NI, PCLMULQDQ, SSE4.2) live in aesni_gcm.cc
 * and crc32c_hw.cc, which are compiled with per-file ISA flags only on
 * x86 toolchains. This header is ISA-neutral so any translation unit
 * (including tests and benches) can include it; the function pointers
 * are resolved once at startup by cpu.cc.
 *
 * Conventions shared by both kernel sets:
 *   - AES round keys are 11 x 16 bytes in wire order (the byte
 *     sequence XORed into the state), identical between the scalar
 *     key schedule and the AES-NI one.
 *   - GHASH powers are H^1..H^8, each stored byte-reversed (ready for
 *     carry-less multiplication); the accumulator `y` stays in the
 *     same byte layout the scalar Ghash uses, so scalar and hardware
 *     absorbs can interleave within one message.
 *   - Counter blocks use GCM layout: 12-byte IV, 32-bit big-endian
 *     counter in bytes 12..15.
 */

#ifndef ANIC_CRYPTO_KERNELS_HH
#define ANIC_CRYPTO_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace anic::crypto::detail {

constexpr size_t kAesRounds = 10;
constexpr size_t kGhashPowers = 8;

struct HwOps
{
    /** Advances a raw (non-inverted) CRC32C state over @p n bytes. */
    uint32_t (*crc32cUpdate)(uint32_t crc, const uint8_t *p, size_t n);

    /** AES-128 key schedule (AESKEYGENASSIST). */
    void (*aesKeyExpand)(const uint8_t key[16], uint8_t rk[11][16]);

    /** Single-block encrypt from expanded round keys. */
    void (*aesEncryptBlock)(const uint8_t rk[11][16], const uint8_t in[16],
                            uint8_t out[16]);

    /** Computes the byte-reversed powers H^1..H^8 from the subkey H. */
    void (*ghashInit)(const uint8_t h[16], uint8_t hpow[8][16]);

    /** Absorbs @p nblk whole 16-byte blocks into accumulator @p y. */
    void (*ghashBlocks)(const uint8_t hpow[8][16], uint8_t y[16],
                        const uint8_t *data, size_t nblk);

    /**
     * Fused GCM bulk update over whole blocks: 8-way interleaved
     * AES-CTR keystream, XOR with @p in, and aggregated-reduction
     * GHASH over the ciphertext. Pre-increments the counter like
     * AesGcm::ctrBlock and stores the advanced counter back into
     * @p ctr. In-place (out == in) safe.
     */
    void (*gcmCryptBlocks)(const uint8_t rk[11][16],
                           const uint8_t hpow[8][16], uint8_t ctr[16],
                           uint8_t y[16], const uint8_t *in, uint8_t *out,
                           size_t nblk, bool encrypt);

    /**
     * CTR-only transform of whole blocks for the resync/partial-
     * offload path: block @p j uses counter value (uint32)(counter+j).
     * In-place safe.
     */
    void (*ctrBlocks)(const uint8_t rk[11][16], const uint8_t iv[12],
                      uint64_t counter, const uint8_t *in, uint8_t *out,
                      size_t nblk);
};

/**
 * The hardware kernel table, or nullptr when the scalar kernels are
 * active (not compiled in, CPU lacks the extensions, or forced via
 * ANIC_CRYPTO_IMPL=scalar). Resolved once.
 */
const HwOps *hwOps();

/** Same, ignoring the environment override (tests and benches). */
const HwOps *hwOpsIfSupported();

/** Scalar CRC32C kernel (slicing-by-8), raw-state form. */
uint32_t crc32cScalarUpdate(uint32_t crc, const uint8_t *p, size_t n);

#ifdef ANIC_HAVE_X86_CRYPTO
// Implemented in the ISA-flagged translation units.
namespace x86 {
uint32_t crc32cUpdate(uint32_t crc, const uint8_t *p, size_t n);
void aesKeyExpand(const uint8_t key[16], uint8_t rk[11][16]);
void aesEncryptBlock(const uint8_t rk[11][16], const uint8_t in[16],
                     uint8_t out[16]);
void ghashInit(const uint8_t h[16], uint8_t hpow[8][16]);
void ghashBlocks(const uint8_t hpow[8][16], uint8_t y[16],
                 const uint8_t *data, size_t nblk);
void gcmCryptBlocks(const uint8_t rk[11][16], const uint8_t hpow[8][16],
                    uint8_t ctr[16], uint8_t y[16], const uint8_t *in,
                    uint8_t *out, size_t nblk, bool encrypt);
void ctrBlocks(const uint8_t rk[11][16], const uint8_t iv[12],
               uint64_t counter, const uint8_t *in, uint8_t *out,
               size_t nblk);
} // namespace x86
#endif // ANIC_HAVE_X86_CRYPTO

} // namespace anic::crypto::detail

#endif // ANIC_CRYPTO_KERNELS_HH
