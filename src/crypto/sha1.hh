/**
 * @file
 * SHA-1 (RFC 3174) and HMAC-SHA1 (RFC 2104). Used by the Table 1
 * reproduction (AES-128-CBC-HMAC-SHA1 cipher suite) and available to
 * L5Ps that authenticate with HMAC.
 */

#ifndef ANIC_CRYPTO_SHA1_HH
#define ANIC_CRYPTO_SHA1_HH

#include <array>
#include <cstdint>

#include "util/bytes.hh"

namespace anic::crypto {

/** Incremental SHA-1. */
class Sha1
{
  public:
    static constexpr size_t kDigestSize = 20;
    static constexpr size_t kBlockSize = 64;

    Sha1() { reset(); }

    void reset();
    void update(ByteView data);

    /** Finalizes into @p out (20 bytes); the object is then reusable. */
    void final(ByteSpan out);

    static std::array<uint8_t, kDigestSize> compute(ByteView data);

  private:
    void processBlock(const uint8_t *block);

    uint32_t h_[5];
    uint64_t totalLen_ = 0;
    uint8_t buf_[kBlockSize];
    size_t bufLen_ = 0;
};

/** One-shot HMAC-SHA1. */
std::array<uint8_t, Sha1::kDigestSize> hmacSha1(ByteView key, ByteView msg);

} // namespace anic::crypto

#endif // ANIC_CRYPTO_SHA1_HH
