/**
 * @file
 * Hardware AES-128-GCM kernels: AES-NI key schedule, 8-block
 * interleaved CTR keystream generation, and carry-less-multiply GHASH
 * with aggregated (4/8-block) reduction, following the method of the
 * Intel GCM white paper (Gueron & Kounavis). Compiled with
 * -maes -mpclmul -msse4.2 for this file only; everything here is
 * reached exclusively through the dispatch table in cpu.cc, so the
 * rest of the build stays portable.
 *
 * Representation notes: GHASH blocks are byte-reversed on load so a
 * block becomes a 128-bit integer whose bit i holds the coefficient of
 * x^(127-i). Products of such bit-reflected values come out shifted
 * right by one, which the reduction step compensates by shifting the
 * 256-bit product left by one before folding mod the GCM polynomial.
 */

#include <immintrin.h>

#include "crypto/kernels.hh"

namespace anic::crypto::detail::x86 {

namespace {

inline __m128i
bswap128(__m128i x)
{
    const __m128i mask = _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                      12, 13, 14, 15);
    return _mm_shuffle_epi8(x, mask);
}

// ------------------------------------------------------------- AES

inline __m128i
expandStep(__m128i key, __m128i keygened)
{
    keygened = _mm_shuffle_epi32(keygened, _MM_SHUFFLE(3, 3, 3, 3));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    return _mm_xor_si128(key, keygened);
}

struct RoundKeys
{
    __m128i k[11];

    explicit RoundKeys(const uint8_t rk[11][16])
    {
        for (int i = 0; i < 11; i++)
            k[i] = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rk[i]));
    }
};

inline __m128i
encryptOne(const RoundKeys &rk, __m128i b)
{
    b = _mm_xor_si128(b, rk.k[0]);
    for (int r = 1; r < 10; r++)
        b = _mm_aesenc_si128(b, rk.k[r]);
    return _mm_aesenclast_si128(b, rk.k[10]);
}

/** Encrypts @p w state blocks in flight to hide AESENC latency. */
template <int W>
inline void
encryptWide(const RoundKeys &rk, __m128i b[W])
{
    for (int j = 0; j < W; j++)
        b[j] = _mm_xor_si128(b[j], rk.k[0]);
    for (int r = 1; r < 10; r++)
        for (int j = 0; j < W; j++)
            b[j] = _mm_aesenc_si128(b[j], rk.k[r]);
    for (int j = 0; j < W; j++)
        b[j] = _mm_aesenclast_si128(b[j], rk.k[10]);
}

/** Counter block: @p base with the (big-endian) value @p v in lane 3. */
inline __m128i
counterBlock(__m128i base, uint32_t v)
{
    return _mm_insert_epi32(base, static_cast<int>(__builtin_bswap32(v)), 3);
}

// ----------------------------------------------------------- GHASH

/**
 * Accumulates the unreduced 256-bit carry-less product a*b into
 * (lo, hi). Summing several products before one reduction is the
 * aggregated-reduction trick: reduction is linear over XOR.
 */
inline void
clmulAcc(__m128i a, __m128i b, __m128i &lo, __m128i &hi)
{
    __m128i t0 = _mm_clmulepi64_si128(a, b, 0x00);
    __m128i t1 = _mm_clmulepi64_si128(a, b, 0x10);
    __m128i t2 = _mm_clmulepi64_si128(a, b, 0x01);
    __m128i t3 = _mm_clmulepi64_si128(a, b, 0x11);
    t1 = _mm_xor_si128(t1, t2);
    lo = _mm_xor_si128(lo, t0);
    lo = _mm_xor_si128(lo, _mm_slli_si128(t1, 8));
    hi = _mm_xor_si128(hi, t3);
    hi = _mm_xor_si128(hi, _mm_srli_si128(t1, 8));
}

/**
 * Shifts the 256-bit value (hi:lo) left by one (the bit-reflection
 * fixup) and reduces it mod x^128 + x^7 + x^2 + x + 1.
 */
inline __m128i
reduceShifted(__m128i lo, __m128i hi)
{
    __m128i tmp7 = _mm_srli_epi32(lo, 31);
    __m128i tmp8 = _mm_srli_epi32(hi, 31);
    lo = _mm_slli_epi32(lo, 1);
    hi = _mm_slli_epi32(hi, 1);

    __m128i tmp9 = _mm_srli_si128(tmp7, 12);
    tmp8 = _mm_slli_si128(tmp8, 4);
    tmp7 = _mm_slli_si128(tmp7, 4);
    lo = _mm_or_si128(lo, tmp7);
    hi = _mm_or_si128(hi, tmp8);
    hi = _mm_or_si128(hi, tmp9);

    tmp7 = _mm_slli_epi32(lo, 31);
    tmp8 = _mm_slli_epi32(lo, 30);
    tmp9 = _mm_slli_epi32(lo, 25);
    tmp7 = _mm_xor_si128(tmp7, tmp8);
    tmp7 = _mm_xor_si128(tmp7, tmp9);
    tmp8 = _mm_srli_si128(tmp7, 4);
    tmp7 = _mm_slli_si128(tmp7, 12);
    lo = _mm_xor_si128(lo, tmp7);

    __m128i r = _mm_srli_epi32(lo, 1);
    r = _mm_xor_si128(r, _mm_srli_epi32(lo, 2));
    r = _mm_xor_si128(r, _mm_srli_epi32(lo, 7));
    r = _mm_xor_si128(r, tmp8);
    lo = _mm_xor_si128(lo, r);
    return _mm_xor_si128(hi, lo);
}

/** Full GF(2^128) multiply of byte-reversed operands. */
inline __m128i
gfmul(__m128i a, __m128i b)
{
    __m128i lo = _mm_setzero_si128();
    __m128i hi = _mm_setzero_si128();
    clmulAcc(a, b, lo, hi);
    return reduceShifted(lo, hi);
}

struct GhashKey
{
    __m128i h[kGhashPowers]; // h[i] = byte-reversed H^(i+1)

    explicit GhashKey(const uint8_t hpow[8][16])
    {
        for (size_t i = 0; i < kGhashPowers; i++)
            h[i] = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(hpow[i]));
    }
};

inline __m128i
loadBlockSwapped(const uint8_t *p)
{
    return bswap128(_mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
}

/**
 * Absorbs 4 blocks with a single reduction:
 *   Y' = (Y ^ c0)*H^4 ^ c1*H^3 ^ c2*H^2 ^ c3*H
 */
inline __m128i
ghash4(const GhashKey &hk, __m128i y, __m128i c0, __m128i c1, __m128i c2,
       __m128i c3)
{
    __m128i lo = _mm_setzero_si128();
    __m128i hi = _mm_setzero_si128();
    clmulAcc(_mm_xor_si128(y, c0), hk.h[3], lo, hi);
    clmulAcc(c1, hk.h[2], lo, hi);
    clmulAcc(c2, hk.h[1], lo, hi);
    clmulAcc(c3, hk.h[0], lo, hi);
    return reduceShifted(lo, hi);
}

/** Absorbs 8 blocks with a single reduction (powers H^8..H^1). */
inline __m128i
ghash8(const GhashKey &hk, __m128i y, const __m128i c[8])
{
    __m128i lo = _mm_setzero_si128();
    __m128i hi = _mm_setzero_si128();
    clmulAcc(_mm_xor_si128(y, c[0]), hk.h[7], lo, hi);
    for (int j = 1; j < 8; j++)
        clmulAcc(c[j], hk.h[7 - j], lo, hi);
    return reduceShifted(lo, hi);
}

} // namespace

// --------------------------------------------------- dispatch entry

void
aesKeyExpand(const uint8_t key[16], uint8_t rk[11][16])
{
    __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i *>(key));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(rk[0]), k);
    // AESKEYGENASSIST needs an immediate round constant; unroll.
#define ANIC_EXPAND(i, rcon)                                                  \
    k = expandStep(k, _mm_aeskeygenassist_si128(k, rcon));                    \
    _mm_storeu_si128(reinterpret_cast<__m128i *>(rk[i]), k)
    ANIC_EXPAND(1, 0x01);
    ANIC_EXPAND(2, 0x02);
    ANIC_EXPAND(3, 0x04);
    ANIC_EXPAND(4, 0x08);
    ANIC_EXPAND(5, 0x10);
    ANIC_EXPAND(6, 0x20);
    ANIC_EXPAND(7, 0x40);
    ANIC_EXPAND(8, 0x80);
    ANIC_EXPAND(9, 0x1b);
    ANIC_EXPAND(10, 0x36);
#undef ANIC_EXPAND
}

void
aesEncryptBlock(const uint8_t rk[11][16], const uint8_t in[16],
                uint8_t out[16])
{
    RoundKeys keys(rk);
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i *>(in));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out), encryptOne(keys, b));
}

void
ghashInit(const uint8_t h[16], uint8_t hpow[8][16])
{
    __m128i hs = loadBlockSwapped(h);
    __m128i p = hs;
    _mm_storeu_si128(reinterpret_cast<__m128i *>(hpow[0]), p);
    for (size_t i = 1; i < kGhashPowers; i++) {
        p = gfmul(p, hs);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(hpow[i]), p);
    }
}

void
ghashBlocks(const uint8_t hpow[8][16], uint8_t y[16], const uint8_t *data,
            size_t nblk)
{
    GhashKey hk(hpow);
    __m128i acc = loadBlockSwapped(y);
    while (nblk >= 4) {
        acc = ghash4(hk, acc, loadBlockSwapped(data),
                     loadBlockSwapped(data + 16), loadBlockSwapped(data + 32),
                     loadBlockSwapped(data + 48));
        data += 64;
        nblk -= 4;
    }
    while (nblk > 0) {
        acc = gfmul(_mm_xor_si128(acc, loadBlockSwapped(data)), hk.h[0]);
        data += 16;
        nblk--;
    }
    _mm_storeu_si128(reinterpret_cast<__m128i *>(y), bswap128(acc));
}

void
gcmCryptBlocks(const uint8_t rk[11][16], const uint8_t hpow[8][16],
               uint8_t ctr[16], uint8_t y[16], const uint8_t *in,
               uint8_t *out, size_t nblk, bool encrypt)
{
    RoundKeys keys(rk);
    GhashKey hk(hpow);
    __m128i base = _mm_loadu_si128(reinterpret_cast<const __m128i *>(ctr));
    uint32_t c = __builtin_bswap32(
        static_cast<uint32_t>(_mm_extract_epi32(base, 3)));
    __m128i acc = loadBlockSwapped(y);

    while (nblk >= 8) {
        __m128i b[8];
        for (int j = 0; j < 8; j++)
            b[j] = counterBlock(base, c + 1 + static_cast<uint32_t>(j));
        c += 8;
        encryptWide<8>(keys, b);
        __m128i ct[8];
        for (int j = 0; j < 8; j++) {
            __m128i pin = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in + 16 * j));
            __m128i o = _mm_xor_si128(pin, b[j]);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 16 * j), o);
            ct[j] = bswap128(encrypt ? o : pin);
        }
        acc = ghash8(hk, acc, ct);
        in += 128;
        out += 128;
        nblk -= 8;
    }
    while (nblk >= 4) {
        __m128i b[4];
        for (int j = 0; j < 4; j++)
            b[j] = counterBlock(base, c + 1 + static_cast<uint32_t>(j));
        c += 4;
        encryptWide<4>(keys, b);
        __m128i ct[4];
        for (int j = 0; j < 4; j++) {
            __m128i pin = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in + 16 * j));
            __m128i o = _mm_xor_si128(pin, b[j]);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 16 * j), o);
            ct[j] = bswap128(encrypt ? o : pin);
        }
        acc = ghash4(hk, acc, ct[0], ct[1], ct[2], ct[3]);
        in += 64;
        out += 64;
        nblk -= 4;
    }
    while (nblk > 0) {
        __m128i ks = encryptOne(keys, counterBlock(base, ++c));
        __m128i pin = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in));
        __m128i o = _mm_xor_si128(pin, ks);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out), o);
        acc = gfmul(_mm_xor_si128(acc, bswap128(encrypt ? o : pin)),
                    hk.h[0]);
        in += 16;
        out += 16;
        nblk--;
    }

    _mm_storeu_si128(reinterpret_cast<__m128i *>(y), bswap128(acc));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(ctr),
                     counterBlock(base, c));
}

void
ctrBlocks(const uint8_t rk[11][16], const uint8_t iv[12], uint64_t counter,
          const uint8_t *in, uint8_t *out, size_t nblk)
{
    RoundKeys keys(rk);
    alignas(16) uint8_t basebuf[16] = {0};
    __builtin_memcpy(basebuf, iv, 12);
    __m128i base = _mm_load_si128(reinterpret_cast<const __m128i *>(basebuf));

    while (nblk >= 8) {
        __m128i b[8];
        for (int j = 0; j < 8; j++)
            b[j] = counterBlock(
                base, static_cast<uint32_t>(counter + static_cast<uint64_t>(j)));
        counter += 8;
        encryptWide<8>(keys, b);
        for (int j = 0; j < 8; j++) {
            __m128i pin = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in + 16 * j));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 16 * j),
                             _mm_xor_si128(pin, b[j]));
        }
        in += 128;
        out += 128;
        nblk -= 8;
    }
    while (nblk > 0) {
        __m128i ks = encryptOne(keys,
                                counterBlock(base,
                                             static_cast<uint32_t>(counter)));
        counter++;
        __m128i pin = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out),
                         _mm_xor_si128(pin, ks));
        in += 16;
        out += 16;
        nblk--;
    }
}

} // namespace anic::crypto::detail::x86
