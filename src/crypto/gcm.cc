#include "crypto/gcm.hh"

#include "crypto/kernels.hh"
#include "util/panic.hh"

namespace anic::crypto {

namespace {

// Reduction constants for the 4-bit table method: last4[rem] << 48 is
// the polynomial correction after shifting the accumulator right by 4.
const uint64_t kLast4[16] = {
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
    0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0,
};

const detail::HwOps *
opsForImpl(CryptoImpl impl)
{
    if (impl != CryptoImpl::Hw)
        return nullptr;
    const detail::HwOps *ops = detail::hwOpsIfSupported();
    ANIC_ASSERT(ops != nullptr, "hw crypto kernels unavailable");
    return ops;
}

} // namespace

void
Ghash::setH(const uint8_t h[16])
{
    setH(h, activeCryptoImpl());
}

void
Ghash::setH(const uint8_t h[16], CryptoImpl impl)
{
    hw_ = opsForImpl(impl);
    if (hw_ != nullptr) {
        hw_->ghashInit(h, hpow_);
        reset();
        return;
    }

    uint64_t vh = getBe64(h);
    uint64_t vl = getBe64(h + 8);

    hl_[8] = vl;
    hh_[8] = vh;
    // Entries 4, 2, 1: successive divisions by x (right shift with
    // reduction by the GCM polynomial).
    for (int i = 4; i > 0; i >>= 1) {
        uint32_t t = static_cast<uint32_t>(vl & 1);
        vl = (vh << 63) | (vl >> 1);
        vh = (vh >> 1) ^ (t ? (0xe1ull << 56) : 0);
        hl_[i] = vl;
        hh_[i] = vh;
    }
    hl_[0] = 0;
    hh_[0] = 0;
    // Remaining entries by linearity.
    for (int i = 2; i <= 8; i *= 2) {
        for (int j = 1; j < i; j++) {
            hh_[i + j] = hh_[i] ^ hh_[j];
            hl_[i + j] = hl_[i] ^ hl_[j];
        }
    }
    reset();
}

void
Ghash::mulH(uint8_t x[16]) const
{
    uint8_t lo = x[15] & 0xf;
    uint64_t zh = hh_[lo];
    uint64_t zl = hl_[lo];

    for (int i = 15; i >= 0; i--) {
        lo = x[i] & 0xf;
        uint8_t hi = x[i] >> 4;

        if (i != 15) {
            uint8_t rem = static_cast<uint8_t>(zl & 0xf);
            zl = (zh << 60) | (zl >> 4);
            zh = zh >> 4;
            zh ^= kLast4[rem] << 48;
            zh ^= hh_[lo];
            zl ^= hl_[lo];
        }
        uint8_t rem = static_cast<uint8_t>(zl & 0xf);
        zl = (zh << 60) | (zl >> 4);
        zh = zh >> 4;
        zh ^= kLast4[rem] << 48;
        zh ^= hh_[hi];
        zl ^= hl_[hi];
    }
    putBe64(x, zh);
    putBe64(x + 8, zl);
}

void
Ghash::absorbBlock(const uint8_t block[16])
{
    if (hw_ != nullptr) {
        hw_->ghashBlocks(hpow_, y_, block, 1);
        return;
    }
    for (int i = 0; i < 16; i++)
        y_[i] ^= block[i];
    mulH(y_);
}

void
Ghash::absorbPadded(ByteView data)
{
    size_t off = 0;
    if (hw_ != nullptr) {
        size_t nblk = data.size() / 16;
        if (nblk > 0) {
            hw_->ghashBlocks(hpow_, y_, data.data(), nblk);
            off = nblk * 16;
        }
    } else {
        while (off + 16 <= data.size()) {
            absorbBlock(data.data() + off);
            off += 16;
        }
    }
    if (off < data.size()) {
        uint8_t block[16] = {0};
        std::memcpy(block, data.data() + off, data.size() - off);
        absorbBlock(block);
    }
}

void
Ghash::gf128MulBitwise(const uint8_t x[16], const uint8_t y[16],
                       uint8_t out[16])
{
    // NIST SP 800-38D algorithm 1 (right-shift convention): bit 0 is
    // the most significant bit of byte 0.
    uint8_t z[16] = {0};
    uint8_t v[16];
    std::memcpy(v, y, 16);

    for (int i = 0; i < 128; i++) {
        int xbit = (x[i / 8] >> (7 - (i % 8))) & 1;
        if (xbit) {
            for (int k = 0; k < 16; k++)
                z[k] ^= v[k];
        }
        int lsb = v[15] & 1;
        // v >>= 1 (across the 128-bit value, msb-first layout).
        for (int k = 15; k > 0; k--)
            v[k] = static_cast<uint8_t>((v[k] >> 1) | (v[k - 1] << 7));
        v[0] >>= 1;
        if (lsb)
            v[0] ^= 0xe1;
    }
    std::memcpy(out, z, 16);
}

void
AesGcm::setKey(ByteView key)
{
    setKey(key, activeCryptoImpl());
}

void
AesGcm::setKey(ByteView key, CryptoImpl impl)
{
    aes_.setKey(key);
    hw_ = opsForImpl(impl);
    uint8_t zero[16] = {0};
    uint8_t h[16];
    if (hw_ != nullptr) {
        hw_->aesKeyExpand(key.data(), rk_);
        hw_->aesEncryptBlock(rk_, zero, h);
    } else {
        aes_.encryptBlock(zero, h);
    }
    ghash_.setH(h, impl);
    keySet_ = true;
}

void
AesGcm::start(ByteView iv, ByteView aad)
{
    ANIC_ASSERT(keySet_, "AesGcm used before setKey");
    ANIC_ASSERT(iv.size() == kIvSize, "only 96-bit IVs supported");

    std::memcpy(j0_, iv.data(), 12);
    putBe32(j0_ + 12, 1);
    std::memcpy(ctr_, j0_, 16);

    ghash_.reset();
    ghash_.absorbPadded(aad);
    aadLen_ = aad.size();
    dataLen_ = 0;
    ksUsed_ = 16;
    carryLen_ = 0;
}

void
AesGcm::encryptBlock(const uint8_t in[16], uint8_t out[16]) const
{
    if (hw_ != nullptr)
        hw_->aesEncryptBlock(rk_, in, out);
    else
        aes_.encryptBlock(in, out);
}

void
AesGcm::ctrBlock(uint8_t out[16])
{
    uint32_t c = getBe32(ctr_ + 12) + 1;
    putBe32(ctr_ + 12, c);
    encryptBlock(ctr_, out);
}

void
AesGcm::cryptUpdate(ByteView in, ByteSpan out, bool encrypt)
{
    ANIC_ASSERT(out.size() >= in.size());
    size_t i = 0;
    const size_t n = in.size();

    // Byte path: drains/refills partial keystream + GHASH carry
    // state so chunking at arbitrary (packet) boundaries works.
    auto byte_path = [&](size_t upto) {
        for (; i < upto; i++) {
            if (ksUsed_ == 16) {
                ctrBlock(ks_);
                ksUsed_ = 0;
            }
            uint8_t c_in = in[i];
            uint8_t o = c_in ^ ks_[ksUsed_++];
            out[i] = o;
            // GHASH runs over the ciphertext in both directions.
            uint8_t ct = encrypt ? o : c_in;
            ghashCarry_[carryLen_++] = ct;
            if (carryLen_ == 16) {
                ghash_.absorbBlock(ghashCarry_);
                carryLen_ = 0;
            }
        }
    };

    // Align to a block boundary (keystream consumption and the GHASH
    // carry advance in lockstep, so one misalignment covers both).
    if (ksUsed_ != 16 || carryLen_ != 0) {
        size_t mis = carryLen_ != 0 ? carryLen_ : ksUsed_;
        if (mis != 0 && mis != 16)
            byte_path(std::min(n, i + (16 - mis)));
    }

    // Block fast path: whole keystream blocks, direct GHASH
    // absorption — this is what the simulator's throughput rides on.
    if (hw_ != nullptr) {
        // Fused hardware kernel: 8-way AES-NI CTR + PCLMUL GHASH.
        if (i + 16 <= n && ksUsed_ == 16 && carryLen_ == 0) {
            size_t nblk = (n - i) / 16;
            hw_->gcmCryptBlocks(rk_, ghash_.hpow_, ctr_, ghash_.y_,
                                in.data() + i, out.data() + i, nblk,
                                encrypt);
            i += nblk * 16;
        }
    } else {
        while (i + 16 <= n && ksUsed_ == 16 && carryLen_ == 0) {
            ctrBlock(ks_);
            const uint8_t *src = in.data() + i;
            uint8_t *dst = out.data() + i;
            // GHASH always runs over the ciphertext. On decrypt the
            // ciphertext must be captured before the XOR because
            // callers routinely decrypt in place (dst aliases src).
            uint8_t ct[16];
            if (!encrypt)
                std::memcpy(ct, src, 16);
            uint64_t s0;
            uint64_t s1;
            uint64_t k0;
            uint64_t k1;
            std::memcpy(&s0, src, 8);
            std::memcpy(&s1, src + 8, 8);
            std::memcpy(&k0, ks_, 8);
            std::memcpy(&k1, ks_ + 8, 8);
            uint64_t o0 = s0 ^ k0;
            uint64_t o1 = s1 ^ k1;
            std::memcpy(dst, &o0, 8);
            std::memcpy(dst + 8, &o1, 8);
            ghash_.absorbBlock(encrypt ? dst : ct);
            i += 16;
        }
    }

    byte_path(n);
    dataLen_ += n;
}

void
AesGcm::encryptUpdate(ByteView in, ByteSpan out)
{
    cryptUpdate(in, out, true);
}

void
AesGcm::decryptUpdate(ByteView in, ByteSpan out)
{
    cryptUpdate(in, out, false);
}

void
AesGcm::finishTag(ByteSpan tag)
{
    ANIC_ASSERT(tag.size() >= kTagSize);
    if (carryLen_ > 0) {
        uint8_t block[16] = {0};
        std::memcpy(block, ghashCarry_, carryLen_);
        ghash_.absorbBlock(block);
        carryLen_ = 0;
    }
    uint8_t lens[16];
    putBe64(lens, aadLen_ * 8);
    putBe64(lens + 8, dataLen_ * 8);
    ghash_.absorbBlock(lens);

    uint8_t s[16];
    ghash_.digest(s);
    uint8_t ekj0[16];
    encryptBlock(j0_, ekj0);
    for (int i = 0; i < 16; i++)
        tag[i] = s[i] ^ ekj0[i];
}

bool
AesGcm::checkTag(ByteView tag)
{
    ANIC_ASSERT(tag.size() == kTagSize);
    uint8_t computed[16];
    finishTag(computed);
    uint8_t diff = 0;
    for (int i = 0; i < 16; i++)
        diff |= computed[i] ^ tag[i];
    return diff == 0;
}

Bytes
AesGcm::seal(ByteView iv, ByteView aad, ByteView plaintext)
{
    Bytes out(plaintext.size() + kTagSize);
    start(iv, aad);
    encryptUpdate(plaintext, ByteSpan(out.data(), plaintext.size()));
    finishTag(ByteSpan(out.data() + plaintext.size(), kTagSize));
    return out;
}

bool
AesGcm::open(ByteView iv, ByteView aad, ByteView sealed, Bytes &plaintext)
{
    if (sealed.size() < kTagSize)
        return false;
    size_t ptlen = sealed.size() - kTagSize;
    plaintext.resize(ptlen);
    start(iv, aad);
    decryptUpdate(sealed.subspan(0, ptlen), plaintext);
    return checkTag(sealed.subspan(ptlen));
}

namespace {

void
ctrAtOffsetImpl(const Aes128 &aes, ByteView iv, uint64_t byteOff,
                ByteSpan data, const detail::HwOps *ops)
{
    ANIC_ASSERT(iv.size() == AesGcm::kIvSize);
    uint64_t block = byteOff / 16;
    size_t skip = static_cast<size_t>(byteOff % 16);
    // GCM encrypts data with counters 2, 3, ... (1 is the tag block).
    uint64_t counter = 2 + block;
    size_t i = 0;

    if (ops != nullptr) {
        uint8_t rk[11][16];
        aes.exportRoundKeys(rk);
        uint8_t ctrb[16];
        std::memcpy(ctrb, iv.data(), 12);
        uint8_t ks[16];
        // Partial head block up to the next block boundary.
        if (skip != 0 && i < data.size()) {
            putBe32(ctrb + 12, static_cast<uint32_t>(counter++));
            ops->aesEncryptBlock(rk, ctrb, ks);
            for (size_t k = skip; k < 16 && i < data.size(); k++)
                data[i++] ^= ks[k];
        }
        size_t nblk = (data.size() - i) / 16;
        if (nblk > 0) {
            ops->ctrBlocks(rk, iv.data(), counter, data.data() + i,
                           data.data() + i, nblk);
            counter += nblk;
            i += nblk * 16;
        }
        if (i < data.size()) {
            putBe32(ctrb + 12, static_cast<uint32_t>(counter));
            ops->aesEncryptBlock(rk, ctrb, ks);
            for (size_t k = 0; i < data.size(); k++)
                data[i++] ^= ks[k];
        }
        return;
    }

    uint8_t ctr[16];
    std::memcpy(ctr, iv.data(), 12);
    uint8_t ks[16];
    while (i < data.size()) {
        putBe32(ctr + 12, static_cast<uint32_t>(counter++));
        aes.encryptBlock(ctr, ks);
        if (skip == 0 && i + 16 <= data.size()) {
            uint64_t d0;
            uint64_t d1;
            uint64_t k0;
            uint64_t k1;
            std::memcpy(&d0, data.data() + i, 8);
            std::memcpy(&d1, data.data() + i + 8, 8);
            std::memcpy(&k0, ks, 8);
            std::memcpy(&k1, ks + 8, 8);
            d0 ^= k0;
            d1 ^= k1;
            std::memcpy(data.data() + i, &d0, 8);
            std::memcpy(data.data() + i + 8, &d1, 8);
            i += 16;
            continue;
        }
        for (size_t k = skip; k < 16 && i < data.size(); k++)
            data[i++] ^= ks[k];
        skip = 0;
    }
}

} // namespace

void
aesGcmCtrAtOffset(const Aes128 &aes, ByteView iv, uint64_t byteOff,
                  ByteSpan data)
{
    ctrAtOffsetImpl(aes, iv, byteOff, data, detail::hwOps());
}

void
aesGcmCtrAtOffset(const Aes128 &aes, ByteView iv, uint64_t byteOff,
                  ByteSpan data, CryptoImpl impl)
{
    ctrAtOffsetImpl(aes, iv, byteOff, data, opsForImpl(impl));
}

} // namespace anic::crypto
