#include "crypto/aes.hh"

#include "util/panic.hh"

namespace anic::crypto {

namespace {

/** GF(2^8) multiply by 2 (xtime). */
inline uint8_t
xtime(uint8_t x)
{
    return static_cast<uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

/** GF(2^8) multiply. */
uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    while (b) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

struct AesTables
{
    uint8_t sbox[256];
    uint8_t inv_sbox[256];
    // T-tables for the encryption rounds; Te[1..3] are byte rotations
    // of Te[0].
    uint32_t te[4][256];

    AesTables()
    {
        // Build the S-box from multiplicative inverses + affine map.
        // First compute inverses via exponentiation tables on
        // generator 3.
        uint8_t exp[256];
        uint8_t log[256];
        uint8_t x = 1;
        for (int i = 0; i < 256; i++) {
            exp[i] = x;
            log[x] = static_cast<uint8_t>(i);
            x = static_cast<uint8_t>(x ^ xtime(x)); // multiply by 3
        }
        auto inv = [&](uint8_t v) -> uint8_t {
            if (v == 0)
                return 0;
            return exp[(255 - log[v]) % 255];
        };
        for (int i = 0; i < 256; i++) {
            uint8_t v = inv(static_cast<uint8_t>(i));
            uint8_t s = v;
            // Affine transformation: s ^= rotl(v,1..4) ^ 0x63.
            for (int r = 1; r <= 4; r++)
                s ^= static_cast<uint8_t>((v << r) | (v >> (8 - r)));
            s ^= 0x63;
            sbox[i] = s;
            inv_sbox[s] = static_cast<uint8_t>(i);
        }

        for (int i = 0; i < 256; i++) {
            uint8_t s = sbox[i];
            uint32_t t0 = (static_cast<uint32_t>(gmul(s, 2)) << 24) |
                          (static_cast<uint32_t>(s) << 16) |
                          (static_cast<uint32_t>(s) << 8) |
                          static_cast<uint32_t>(gmul(s, 3));
            te[0][i] = t0;
            te[1][i] = (t0 >> 8) | (t0 << 24);
            te[2][i] = (t0 >> 16) | (t0 << 16);
            te[3][i] = (t0 >> 24) | (t0 << 8);
        }
    }
};

const AesTables &
tbl()
{
    static const AesTables t;
    return t;
}

} // namespace

void
Aes128::setKey(ByteView key)
{
    ANIC_ASSERT(key.size() == kKeySize, "AES-128 key must be 16 bytes");
    const AesTables &t = tbl();

    for (int i = 0; i < 4; i++)
        ek_[i] = getBe32(key.data() + 4 * i);

    uint32_t rcon = 0x01000000u;
    for (int i = 4; i < 4 * (kRounds + 1); i++) {
        uint32_t tmp = ek_[i - 1];
        if (i % 4 == 0) {
            // RotWord + SubWord + Rcon.
            tmp = (tmp << 8) | (tmp >> 24);
            tmp = (static_cast<uint32_t>(t.sbox[tmp >> 24]) << 24) |
                  (static_cast<uint32_t>(t.sbox[(tmp >> 16) & 0xff]) << 16) |
                  (static_cast<uint32_t>(t.sbox[(tmp >> 8) & 0xff]) << 8) |
                  static_cast<uint32_t>(t.sbox[tmp & 0xff]);
            tmp ^= rcon;
            rcon = static_cast<uint32_t>(xtime(static_cast<uint8_t>(rcon >> 24))) << 24;
        }
        ek_[i] = ek_[i - 4] ^ tmp;
    }

    // Decryption round keys: equivalent-inverse-cipher form is not
    // needed; the simple inverse cipher uses the encryption keys in
    // reverse order, so just mirror them.
    for (int i = 0; i < 4 * (kRounds + 1); i++)
        dk_[i] = ek_[i];
}

void
Aes128::exportRoundKeys(uint8_t rk[kRounds + 1][16]) const
{
    for (int r = 0; r <= kRounds; r++)
        for (int w = 0; w < 4; w++)
            putBe32(&rk[r][4 * w], ek_[4 * r + w]);
}

void
Aes128::encryptBlock(const uint8_t in[16], uint8_t out[16]) const
{
    const AesTables &t = tbl();

    uint32_t s0 = getBe32(in) ^ ek_[0];
    uint32_t s1 = getBe32(in + 4) ^ ek_[1];
    uint32_t s2 = getBe32(in + 8) ^ ek_[2];
    uint32_t s3 = getBe32(in + 12) ^ ek_[3];

    uint32_t t0;
    uint32_t t1;
    uint32_t t2;
    uint32_t t3;
    for (int r = 1; r < kRounds; r++) {
        t0 = t.te[0][s0 >> 24] ^ t.te[1][(s1 >> 16) & 0xff] ^
             t.te[2][(s2 >> 8) & 0xff] ^ t.te[3][s3 & 0xff] ^ ek_[4 * r];
        t1 = t.te[0][s1 >> 24] ^ t.te[1][(s2 >> 16) & 0xff] ^
             t.te[2][(s3 >> 8) & 0xff] ^ t.te[3][s0 & 0xff] ^ ek_[4 * r + 1];
        t2 = t.te[0][s2 >> 24] ^ t.te[1][(s3 >> 16) & 0xff] ^
             t.te[2][(s0 >> 8) & 0xff] ^ t.te[3][s1 & 0xff] ^ ek_[4 * r + 2];
        t3 = t.te[0][s3 >> 24] ^ t.te[1][(s0 >> 16) & 0xff] ^
             t.te[2][(s1 >> 8) & 0xff] ^ t.te[3][s2 & 0xff] ^ ek_[4 * r + 3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    const uint8_t *sb = t.sbox;
    t0 = (static_cast<uint32_t>(sb[s0 >> 24]) << 24) |
         (static_cast<uint32_t>(sb[(s1 >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(sb[(s2 >> 8) & 0xff]) << 8) |
         static_cast<uint32_t>(sb[s3 & 0xff]);
    t1 = (static_cast<uint32_t>(sb[s1 >> 24]) << 24) |
         (static_cast<uint32_t>(sb[(s2 >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(sb[(s3 >> 8) & 0xff]) << 8) |
         static_cast<uint32_t>(sb[s0 & 0xff]);
    t2 = (static_cast<uint32_t>(sb[s2 >> 24]) << 24) |
         (static_cast<uint32_t>(sb[(s3 >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(sb[(s0 >> 8) & 0xff]) << 8) |
         static_cast<uint32_t>(sb[s1 & 0xff]);
    t3 = (static_cast<uint32_t>(sb[s3 >> 24]) << 24) |
         (static_cast<uint32_t>(sb[(s0 >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(sb[(s1 >> 8) & 0xff]) << 8) |
         static_cast<uint32_t>(sb[s2 & 0xff]);

    putBe32(out, t0 ^ ek_[4 * kRounds]);
    putBe32(out + 4, t1 ^ ek_[4 * kRounds + 1]);
    putBe32(out + 8, t2 ^ ek_[4 * kRounds + 2]);
    putBe32(out + 12, t3 ^ ek_[4 * kRounds + 3]);
}

void
Aes128::decryptBlock(const uint8_t in[16], uint8_t out[16]) const
{
    const AesTables &t = tbl();

    // Straightforward inverse cipher over a byte-matrix state. The
    // state is column-major: state[c][r] is row r of column c.
    uint8_t st[16];
    std::memcpy(st, in, 16);

    auto add_round_key = [&](int round) {
        for (int c = 0; c < 4; c++) {
            uint32_t w = dk_[4 * round + c];
            st[4 * c + 0] ^= static_cast<uint8_t>(w >> 24);
            st[4 * c + 1] ^= static_cast<uint8_t>(w >> 16);
            st[4 * c + 2] ^= static_cast<uint8_t>(w >> 8);
            st[4 * c + 3] ^= static_cast<uint8_t>(w);
        }
    };
    auto inv_shift_rows = [&]() {
        uint8_t tmp[16];
        std::memcpy(tmp, st, 16);
        // Row r shifts right by r positions.
        for (int r = 1; r < 4; r++) {
            for (int c = 0; c < 4; c++)
                st[4 * ((c + r) % 4) + r] = tmp[4 * c + r];
        }
    };
    auto inv_sub_bytes = [&]() {
        for (auto &b : st)
            b = t.inv_sbox[b];
    };
    auto inv_mix_columns = [&]() {
        for (int c = 0; c < 4; c++) {
            uint8_t a0 = st[4 * c];
            uint8_t a1 = st[4 * c + 1];
            uint8_t a2 = st[4 * c + 2];
            uint8_t a3 = st[4 * c + 3];
            st[4 * c + 0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
            st[4 * c + 1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
            st[4 * c + 2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
            st[4 * c + 3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
        }
    };

    add_round_key(kRounds);
    for (int r = kRounds - 1; r >= 1; r--) {
        inv_shift_rows();
        inv_sub_bytes();
        add_round_key(r);
        inv_mix_columns();
    }
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(0);

    std::memcpy(out, st, 16);
}

AesCbc::AesCbc(ByteView key, ByteView iv)
    : aes_(key)
{
    ANIC_ASSERT(iv.size() == 16, "CBC IV must be 16 bytes");
    std::memcpy(ivEnc_, iv.data(), 16);
    std::memcpy(ivDec_, iv.data(), 16);
}

void
AesCbc::encrypt(ByteView in, ByteSpan out)
{
    ANIC_ASSERT(in.size() % 16 == 0 && out.size() >= in.size());
    uint8_t block[16];
    for (size_t off = 0; off < in.size(); off += 16) {
        for (int i = 0; i < 16; i++)
            block[i] = in[off + i] ^ ivEnc_[i];
        aes_.encryptBlock(block, out.data() + off);
        std::memcpy(ivEnc_, out.data() + off, 16);
    }
}

void
AesCbc::decrypt(ByteView in, ByteSpan out)
{
    ANIC_ASSERT(in.size() % 16 == 0 && out.size() >= in.size());
    uint8_t block[16];
    uint8_t next_iv[16];
    for (size_t off = 0; off < in.size(); off += 16) {
        std::memcpy(next_iv, in.data() + off, 16);
        aes_.decryptBlock(in.data() + off, block);
        for (int i = 0; i < 16; i++)
            out[off + i] = block[i] ^ ivDec_[i];
        std::memcpy(ivDec_, next_iv, 16);
    }
}

} // namespace anic::crypto
