/**
 * @file
 * AES-128 block cipher (FIPS-197). The encryption path is implemented
 * with runtime-generated T-tables for throughput (the simulator
 * encrypts real payload bytes); decryption uses the straightforward
 * inverse-round formulation since only CBC needs it.
 */

#ifndef ANIC_CRYPTO_AES_HH
#define ANIC_CRYPTO_AES_HH

#include <cstdint>

#include "util/bytes.hh"

namespace anic::crypto {

/** AES-128 with a fixed key schedule. */
class Aes128
{
  public:
    static constexpr size_t kBlockSize = 16;
    static constexpr size_t kKeySize = 16;
    static constexpr int kRounds = 10;

    Aes128() = default;

    /** Expands @p key (16 bytes) into round keys. */
    explicit Aes128(ByteView key) { setKey(key); }

    void setKey(ByteView key);

    /** Encrypts one 16-byte block, in may alias out. */
    void encryptBlock(const uint8_t in[16], uint8_t out[16]) const;

    /** Decrypts one 16-byte block, in may alias out. */
    void decryptBlock(const uint8_t in[16], uint8_t out[16]) const;

    /**
     * Writes the expanded encryption round keys in wire order (the
     * byte sequence XORed into the state), the layout the hardware
     * kernels consume. Identical to what the AES-NI key schedule
     * produces for the same key.
     */
    void exportRoundKeys(uint8_t rk[kRounds + 1][16]) const;

  private:
    uint32_t ek_[4 * (kRounds + 1)];
    uint32_t dk_[4 * (kRounds + 1)];
};

/**
 * AES-128-CBC with PKCS#7-free semantics: operates on whole blocks
 * only (callers pad). Used by the off-CPU accelerator study (Table 1).
 */
class AesCbc
{
  public:
    AesCbc(ByteView key, ByteView iv);

    /** Encrypts whole blocks in place-capable fashion. */
    void encrypt(ByteView in, ByteSpan out);

    /** Decrypts whole blocks. */
    void decrypt(ByteView in, ByteSpan out);

  private:
    Aes128 aes_;
    uint8_t ivEnc_[16];
    uint8_t ivDec_[16];
};

} // namespace anic::crypto

#endif // ANIC_CRYPTO_AES_HH
