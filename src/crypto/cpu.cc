#include "crypto/cpu.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "crypto/kernels.hh"
#include "util/env.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define ANIC_X86_HOST 1
#endif

namespace anic::crypto {

namespace {

CpuFeatures
detectCpu()
{
    CpuFeatures f;
#ifdef ANIC_X86_HOST
    unsigned a = 0;
    unsigned b = 0;
    unsigned c = 0;
    unsigned d = 0;
    if (__get_cpuid(1, &a, &b, &c, &d)) {
        f.sse42 = (c & bit_SSE4_2) != 0;
        f.aesni = (c & bit_AES) != 0;
        f.pclmul = (c & bit_PCLMUL) != 0;
    }
    if (__get_cpuid_count(7, 0, &a, &b, &c, &d))
        f.avx2 = (b & bit_AVX2) != 0;
#endif
    return f;
}

#ifdef ANIC_HAVE_X86_CRYPTO
const detail::HwOps kX86Ops = {
    &detail::x86::crc32cUpdate,  &detail::x86::aesKeyExpand,
    &detail::x86::aesEncryptBlock, &detail::x86::ghashInit,
    &detail::x86::ghashBlocks,   &detail::x86::gcmCryptBlocks,
    &detail::x86::ctrBlocks,
};
#endif

/**
 * Env override: "scalar" forces the reference kernels, "hw" insists on
 * the accelerated ones (warns + falls back when unavailable), anything
 * else (or unset) auto-selects.
 */
CryptoImpl
resolveActive()
{
    const std::string &impl = util::Env::cryptoImpl();
    const char *env = impl.empty() ? nullptr : impl.c_str();
    bool supported = hwCryptoSupported();
    if (env != nullptr) {
        if (std::strcmp(env, "scalar") == 0)
            return CryptoImpl::Scalar;
        if (std::strcmp(env, "hw") == 0) {
            if (!supported) {
                std::fprintf(stderr,
                             "anic: ANIC_CRYPTO_IMPL=hw but hardware "
                             "crypto kernels are unavailable (%s); "
                             "using scalar\n",
                             hwCryptoCompiled() ? "CPU lacks AES-NI/"
                                                  "PCLMUL/SSE4.2"
                                                : "not compiled in");
                return CryptoImpl::Scalar;
            }
            return CryptoImpl::Hw;
        }
        if (std::strcmp(env, "auto") != 0)
            std::fprintf(stderr,
                         "anic: ignoring unknown ANIC_CRYPTO_IMPL=%s "
                         "(want scalar|hw)\n",
                         env);
    }
    return supported ? CryptoImpl::Hw : CryptoImpl::Scalar;
}

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures f = detectCpu();
    return f;
}

const char *
cryptoImplName(CryptoImpl impl)
{
    return impl == CryptoImpl::Hw ? "hw" : "scalar";
}

bool
hwCryptoCompiled()
{
#ifdef ANIC_HAVE_X86_CRYPTO
    return true;
#else
    return false;
#endif
}

bool
hwCryptoSupported()
{
    const CpuFeatures &f = cpuFeatures();
    return hwCryptoCompiled() && f.aesni && f.pclmul && f.sse42;
}

CryptoImpl
activeCryptoImpl()
{
    static const CryptoImpl impl = resolveActive();
    return impl;
}

namespace detail {

const HwOps *
hwOpsIfSupported()
{
#ifdef ANIC_HAVE_X86_CRYPTO
    if (hwCryptoSupported())
        return &kX86Ops;
#endif
    return nullptr;
}

const HwOps *
hwOps()
{
    static const HwOps *ops =
        activeCryptoImpl() == CryptoImpl::Hw ? hwOpsIfSupported() : nullptr;
    return ops;
}

} // namespace detail

} // namespace anic::crypto
