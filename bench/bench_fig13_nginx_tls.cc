/**
 * @file
 * Figure 13: nginx with the TLS offload variants in configuration C2
 * (all files in the page cache; bound by the 100 Gbps NIC). Variants:
 * https (software kTLS baseline), offload, offload+zc, and http (no
 * encryption, upper bound). Paper: 1 core — offload+zc up to 2.7x
 * https; 8 cores — offload+zc 88% over https at the line-rate point
 * and up to 23% fewer busy cores.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Figure 13: nginx + TLS offload variants, C2 (page cache, "
                "NIC-bound)");

    const HttpVariant variants[] = {HttpVariant::Https, HttpVariant::Offload,
                                    HttpVariant::OffloadZc,
                                    HttpVariant::Http};
    const uint64_t kibs[] = {4, 16, 64, 256};

    struct Cell
    {
        double gbps = 0;
        double busy = 0;
    };
    Cell cells[2][4][4]; // [cores8][size][variant]
    {
        Sweep sweep("fig13", opt);
        for (int cores8 = 0; cores8 < 2; cores8++) {
            for (int ki = 0; ki < 4; ki++) {
                for (int i = 0; i < 4; i++) {
                    uint64_t kib = kibs[ki];
                    std::string label =
                        strprintf("cores=%d/kib=%llu/%s", cores8 ? 8 : 1,
                                  static_cast<unsigned long long>(kib),
                                  variantName(variants[i]));
                    sweep.add(label, [&cells, &variants, cores8, ki, i,
                                      kib](sim::RunContext &ctx) {
                        NginxParams p;
                        p.serverCores = cores8 ? 8 : 1;
                        p.generatorCores = 16;
                        p.fileSize = kib << 10;
                        p.c1 = false;
                        p.variant = variants[i];
                        // Enough connections to saturate, few enough
                        // that the software variants reach steady state
                        // (measuring the initial-burst transient would
                        // count pre-buffered responses draining at line
                        // rate as throughput).
                        p.connections = cores8 ? 512 : 128;
                        p.serverSndBuf = 256 << 10;
                        p.warmup = cores8 ? 40 * sim::kMillisecond
                                          : 120 * sim::kMillisecond;
                        p.bench = "fig13";
                        p.scenario = {
                            {"file_kib", tagNum(static_cast<double>(kib))},
                            {"cores", tagNum(p.serverCores)}};
                        NginxResult r = runNginx(ctx, p);
                        cells[cores8][ki][i] = Cell{r.gbps, r.busyCores};
                        jsonRecord(ctx, "fig13", "gbps", r.gbps,
                                   {{"cores", std::to_string(p.serverCores)},
                                    {"file_kib", std::to_string(kib)},
                                    {"variant", variantName(variants[i])}});
                        jsonRecord(ctx, "fig13", "busy_cores", r.busyCores,
                                   {{"cores", std::to_string(p.serverCores)},
                                    {"file_kib", std::to_string(kib)},
                                    {"variant", variantName(variants[i])}});
                    });
                }
            }
        }
        sweep.drain();
    }

    for (int cores8 = 0; cores8 < 2; cores8++) {
        std::printf("\n-- %d server core%s --\n", cores8 ? 8 : 1,
                    cores8 ? "s" : "");
        std::printf("%-10s", "file[KiB]");
        for (HttpVariant v : variants)
            std::printf(" %11s", variantName(v));
        std::printf(" %8s %10s\n", "zc/https", "busy(zc)");
        for (int ki = 0; ki < 4; ki++) {
            const Cell *row = cells[cores8][ki];
            std::printf("%-10llu",
                        static_cast<unsigned long long>(kibs[ki]));
            for (int i = 0; i < 4; i++)
                std::printf(" %11.2f", row[i].gbps);
            std::printf(" %7.0f%% %10.2f\n",
                        100.0 * (row[2].gbps / row[0].gbps - 1.0),
                        row[2].busy);
        }
    }
    std::printf("\npaper: 1 core offload+zc = 11%%..2.7x over https; "
                "8 cores offload+zc up to 88%% over https near line rate\n");
    return 0;
}
