/**
 * @file
 * Figure 15: Redis-on-Flash (KV store over an OffloadDB-style NVMe
 * backend) with the combined NVMe-TLS offload, memtier-style "get"
 * workload, value sizes 4-256 KiB. Paper: 1-core gains 17%..2.3x;
 * 8 cores saturate the drive with up to 48% fewer busy cores.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct KvResult
{
    double gbps = 0;
    double busyCores = 0;
};

KvResult
runKv(sim::RunContext &ctx, int serverCores, uint64_t valueSize, bool offload)
{
    StorageVariant sv;
    sv.tls = true; // NVMe over TLS both ways
    sv.offload = offload;
    sv.tlsOffload = offload;
    auto ex = ExperimentBuilder()
                  .run(ctx)
                  .serverCores(serverCores)
                  .generatorCores(16)
                  .remoteStorage(sv)
                  .kvOffload(offload)
                  .files(256, valueSize)
                  // memtier: 8 concurrent request-response connections
                  // per server instance (instance = core).
                  .connections(8 * serverCores)
                  .build();
    app::MacroWorld &w = ex->world();

    app::KvServer server(w.server, 6379, *w.storage, ex->kvServerCfg());
    app::KvClientConfig ccfg = ex->kvClientCfg();
    ccfg.verifyContent = false;
    app::KvClient client(w.generator, app::MacroWorld::kGenIp,
                         app::MacroWorld::kSrvIp, 6379, w.files, ccfg);
    client.start();

    ex->warm(serverCores == 1 ? 60 * sim::kMillisecond
                              : 20 * sim::kMillisecond);
    sim::Tick window = ex->scaledWindow(30 * sim::kMillisecond);
    double busy = ex->measure(
        window, [&] { client.measureStart(); },
        [&] { client.measureStop(); });

    emitRegistrySnapshot(
        ctx,
        "fig15", {{"value_kib", tagNum(static_cast<double>(valueSize >> 10))},
                  {"cores", tagNum(serverCores)},
                  {"offload", offload ? "1" : "0"}});
    return KvResult{client.meter().gbps(), busy};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Figure 15: Redis-on-Flash + NVMe-TLS combined offload "
                "(memtier get)");

    const uint64_t kibs[] = {4, 16, 64, 256};
    KvResult r[4][2][2]; // [size][cores8][offload]
    {
        Sweep sweep("fig15", opt);
        for (int ki = 0; ki < 4; ki++) {
            for (int cores8 = 0; cores8 < 2; cores8++) {
                for (int off = 0; off < 2; off++) {
                    uint64_t kib = kibs[ki];
                    std::string label =
                        strprintf("kib=%llu/cores=%d/off=%d",
                                  static_cast<unsigned long long>(kib),
                                  cores8 ? 8 : 1, off);
                    sweep.add(label, [&r, ki, cores8, off,
                                      kib](sim::RunContext &ctx) {
                        r[ki][cores8][off] = runKv(ctx, cores8 ? 8 : 1,
                                                   kib << 10, off == 1);
                    });
                }
            }
        }
        sweep.drain();
    }

    std::printf("%-11s | %10s %10s %7s | %10s %10s %7s | %9s %9s\n",
                "value[KiB]", "base 1c", "off 1c", "gain", "base 8c",
                "off 8c", "gain", "busy base", "busy off");
    for (int ki = 0; ki < 4; ki++) {
        const auto &x = r[ki];
        std::printf("%-11llu | %10.2f %10.2f %6.0f%% | %10.2f %10.2f %6.0f%% "
                    "| %9.2f %9.2f\n",
                    static_cast<unsigned long long>(kibs[ki]), x[0][0].gbps,
                    x[0][1].gbps,
                    100.0 * (x[0][1].gbps / x[0][0].gbps - 1.0), x[1][0].gbps,
                    x[1][1].gbps,
                    100.0 * (x[1][1].gbps / x[1][0].gbps - 1.0),
                    x[1][0].busyCores, x[1][1].busyCores);
    }
    std::printf("\npaper: 1-core gains 17%%..2.3x growing with value size; "
                "8 cores cap at the drive with up to 48%% fewer busy "
                "cores\n");
    return 0;
}
