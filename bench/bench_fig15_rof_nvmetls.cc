/**
 * @file
 * Figure 15: Redis-on-Flash (KV store over an OffloadDB-style NVMe
 * backend) with the combined NVMe-TLS offload, memtier-style "get"
 * workload, value sizes 4-256 KiB. Paper: 1-core gains 17%..2.3x;
 * 8 cores saturate the drive with up to 48% fewer busy cores.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct KvResult
{
    double gbps;
    double busyCores;
};

KvResult
runKv(int serverCores, uint64_t valueSize, bool offload)
{
    app::MacroWorld::Config cfg;
    cfg.serverCores = serverCores;
    cfg.generatorCores = 16;
    cfg.remoteStorage = true;
    cfg.storage.pageCacheBytes = 0;
    cfg.storage.tlsTransport = true;
    if (offload) {
        cfg.storage.offloadEnabled = true;
        cfg.storage.offload.crcRx = true;
        cfg.storage.offload.copyRx = true;
        cfg.storage.tlsCfg.rxOffload = true;
    }
    app::MacroWorld w(cfg);
    w.makeFiles(256, valueSize);

    app::KvServerConfig scfg;
    scfg.tlsEnabled = true;
    if (offload) {
        scfg.tlsCfg.txOffload = true;
        scfg.tlsCfg.rxOffload = true;
        scfg.tlsCfg.zerocopySendfile = true;
    }
    app::KvServer server(w.server, 6379, *w.storage, scfg);

    app::KvClientConfig ccfg;
    // memtier: 8 concurrent request-response connections per
    // server instance (instance = core).
    ccfg.connections = 8 * serverCores;
    ccfg.keyCount = 256;
    ccfg.tlsEnabled = true;
    ccfg.verifyContent = false;
    app::KvClient client(w.generator, app::MacroWorld::kGenIp,
                         app::MacroWorld::kSrvIp, 6379, w.files, ccfg);
    client.start();

    w.sim.runFor(serverCores == 1 ? 60 * sim::kMillisecond
                                  : 20 * sim::kMillisecond);
    sim::Tick window = measureWindow(30 * sim::kMillisecond);
    std::vector<sim::Tick> busy = w.server.busySnapshot();
    client.measureStart();
    w.sim.runFor(window);
    client.measureStop();

    emitRegistrySnapshot(
        "fig15", {{"value_kib", tagNum(static_cast<double>(valueSize >> 10))},
                  {"cores", tagNum(serverCores)},
                  {"offload", offload ? "1" : "0"}});
    return KvResult{client.meter().gbps(), w.server.busyCores(busy, window)};
}

} // namespace

int
main()
{
    printHeader("Figure 15: Redis-on-Flash + NVMe-TLS combined offload "
                "(memtier get)");
    std::printf("%-11s | %10s %10s %7s | %10s %10s %7s | %9s %9s\n",
                "value[KiB]", "base 1c", "off 1c", "gain", "base 8c",
                "off 8c", "gain", "busy base", "busy off");

    for (uint64_t kib : {4, 16, 64, 256}) {
        KvResult b1 = runKv(1, kib << 10, false);
        KvResult o1 = runKv(1, kib << 10, true);
        KvResult b8 = runKv(8, kib << 10, false);
        KvResult o8 = runKv(8, kib << 10, true);
        std::printf("%-11llu | %10.2f %10.2f %6.0f%% | %10.2f %10.2f %6.0f%% "
                    "| %9.2f %9.2f\n",
                    static_cast<unsigned long long>(kib), b1.gbps, o1.gbps,
                    100.0 * (o1.gbps / b1.gbps - 1.0), b8.gbps, o8.gbps,
                    100.0 * (o8.gbps / b8.gbps - 1.0), b8.busyCores,
                    o8.busyCores);
    }
    std::printf("\npaper: 1-core gains 17%%..2.3x growing with value size; "
                "8 cores cap at the drive with up to 48%% fewer busy "
                "cores\n");
    return 0;
}
