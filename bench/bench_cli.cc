#include "bench_cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/env.hh"

namespace anic::bench {

sim::RunConfig
BenchOptions::runConfig() const
{
    sim::RunConfig rc = sim::RunConfig::fromEnv();
    if (quick)
        rc.windowScale = 0.25;
    return rc;
}

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "shared bench options:\n"
                 "  --jobs N         worker threads (default 1)\n"
                 "  --cores N        simulated server core count "
                 "(ANIC_CORES)\n"
                 "  --flows N        concurrent flow count for "
                 "flow-scale benches (ANIC_FLOWS)\n"
                 "  --churn R        flow churn rate: fraction of "
                 "flows cycled per second\n"
                 "  --zipf S         flow popularity skew "
                 "(0 = uniform, ~1 = web-like)\n"
                 "  --filter STR     run only points whose label "
                 "contains STR\n"
                 "  --json PATH      append JSON records to PATH\n"
                 "  --timing-json P  write wall-clock timing JSON to P\n"
                 "  --quick          shrink measurement windows "
                 "(ANIC_QUICK)\n");
}

} // namespace

BenchOptions
parseBenchCli(int argc, char **argv)
{
    BenchOptions opt;
    opt.quick = util::Env::quick();
    opt.cores = util::Env::cores();
    opt.flows = util::Env::flows();
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--jobs") {
            opt.jobs = std::atoi(need("--jobs"));
            if (opt.jobs < 1)
                opt.jobs = 1;
        } else if (a == "--cores") {
            opt.cores = std::atoi(need("--cores"));
            if (opt.cores < 0)
                opt.cores = 0;
        } else if (a == "--flows") {
            opt.flows = std::atoi(need("--flows"));
            if (opt.flows < 0)
                opt.flows = 0;
        } else if (a == "--churn") {
            opt.churn = std::atof(need("--churn"));
        } else if (a == "--zipf") {
            opt.zipf = std::atof(need("--zipf"));
        } else if (a == "--filter") {
            opt.filter = need("--filter");
        } else if (a == "--json") {
            opt.jsonPath = need("--json");
        } else if (a == "--timing-json") {
            opt.timingJson = need("--timing-json");
        } else if (a == "--quick") {
            opt.quick = true;
        } else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage();
            std::exit(2);
        }
    }
    return opt;
}

sim::JobRunner::Sink
makeBenchSink(std::string jsonPath)
{
    return [jsonPath = std::move(jsonPath)](const sim::RunContext::Output &o) {
        if (!o.text.empty()) {
            std::fwrite(o.text.data(), 1, o.text.size(), stdout);
            std::fflush(stdout);
        }
        const std::string &path =
            jsonPath.empty() ? util::Env::benchJson() : jsonPath;
        if (!path.empty() && !o.jsonLines.empty()) {
            if (std::FILE *f = std::fopen(path.c_str(), "a")) {
                std::fwrite(o.jsonLines.data(), 1, o.jsonLines.size(), f);
                std::fclose(f);
            }
        }
        for (const auto &[bench, line] : o.snapshots)
            detail::writeSnapshotFile(bench, line);
        detail::writeTraceFile(o.traceDump);
    };
}

Sweep::Sweep(std::string bench, const BenchOptions &opt)
    : bench_(std::move(bench)), opt_(opt),
      runner_(sim::JobRunner::Config{opt.jobs, opt.runConfig(),
                                     makeBenchSink(opt.jsonPath)})
{
}

Sweep::~Sweep()
{
    drain();
}

bool
Sweep::selected(const std::string &label) const
{
    return opt_.filter.empty() || label.find(opt_.filter) != std::string::npos;
}

bool
Sweep::add(const std::string &label, sim::JobRunner::Job job)
{
    if (!selected(label)) {
        filtered_++;
        return false;
    }
    runner_.submit(label, std::move(job));
    return true;
}

void
Sweep::drain()
{
    if (drained_)
        return;
    drained_ = true;
    runner_.drain();
    emitTiming();
}

void
Sweep::emitTiming()
{
    const sim::JobRunner::Stats &st = runner_.stats();
    if (st.runs == 0 && filtered_ == 0)
        return;

    // Build the timing snapshot as a registry so it shares the
    // anic.registry.v1 schema every other snapshot uses.
    sim::StatsRegistry reg;
    reg.gauge("runner.jobs").set(st.jobs);
    reg.gauge("runner.runs").set(static_cast<double>(st.runs));
    reg.gauge("runner.filtered").set(static_cast<double>(filtered_));
    reg.gauge("runner.wallSeconds").set(st.wallSeconds);
    reg.gauge("runner.cpuSeconds").set(st.cpuSeconds);
    reg.gauge("runner.speedup").set(st.speedup());
    for (const sim::JobRunner::RunTiming &rt : st.perRun) {
        // Dots would nest in the registry path; flatten the label.
        std::string leaf = rt.label;
        for (char &c : leaf) {
            if (c == '.')
                c = '_';
        }
        reg.gauge("run." + leaf + ".wallSeconds").set(rt.wallSeconds);
    }
    std::string line =
        detail::snapshotLine(bench_, {{"kind", "timing"}}, reg);

    // Timing is wall-clock and therefore nondeterministic: it goes to
    // stderr and the timing files, never to stdout, so `--jobs N`
    // stdout stays byte-identical to serial.
    std::fprintf(stderr, "%s\n", line.c_str());
    if (!opt_.timingJson.empty()) {
        if (std::FILE *f = std::fopen(opt_.timingJson.c_str(), "w")) {
            std::fprintf(f, "%s\n", line.c_str());
            std::fclose(f);
        }
    }
    if (!util::Env::snapshotDir().empty()) {
        std::string path =
            util::Env::snapshotDir() + "/" + bench_ + "-timing.json";
        if (std::FILE *f = std::fopen(path.c_str(), "w")) {
            std::fprintf(f, "%s\n", line.c_str());
            std::fclose(f);
        }
    }
}

} // namespace anic::bench
