/**
 * @file
 * Figure 16: packet-loss effect at the TLS *sender* — 128 iperf
 * streams from one saturated core, loss 0-5%: (a) throughput of
 * plain TCP vs TLS offload vs software TLS, (b) the PCIe bandwidth
 * the NIC spends re-reading message data for tx context recovery.
 * Paper: offload stays within 8-11% of plain TCP and >=33% above
 * software TLS even at 5% loss; recovery costs <=2.5% of PCIe.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Point
{
    double gbps = 0;
    double pciePct = 0; // context-recovery share of PCIe capacity
};

const char *kModeName[] = {"tcp", "offload", "tls"};

Point
run(sim::RunContext &ctx, double loss, int mode /*0=tcp 1=offload 2=tls*/)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = loss;
    lc.seed = 77;
    auto ex = ExperimentBuilder()
                  .run(ctx)
                  .serverCores(8)    // receiver must not be the bottleneck
                  .generatorCores(1) // the measured, saturated sender core
                  .pageCache()
                  .link(lc)
                  // Modest per-stream socket buffers: with 1 MB each, a
                  // single software-TLS core spends >100 ms
                  // pre-encrypting the initial 128-stream burst before
                  // any ack gets processed.
                  .generatorSndBuf(128 << 10)
                  .serverSndBuf(128 << 10)
                  .build();
    app::MacroWorld &w = ex->world();

    app::IperfConfig icfg;
    icfg.streams = 128;
    icfg.tlsEnabled = mode != 0;
    icfg.clientTls.txOffload = mode == 1;
    app::IperfRun runr(w.generator, app::MacroWorld::kGenIp, w.server,
                       app::MacroWorld::kSrvIp, icfg);
    runr.start();
    ex->warm(20 * sim::kMillisecond);

    sim::Tick window = ex->scaledWindow(40 * sim::kMillisecond);
    nic::PcieStats pcie0 = w.generator.nicDev().pcie();
    ex->measure(
        w.generator, window, [&] { runr.measureStart(); },
        [&] { runr.measureStop(); });
    nic::PcieStats pcie1 = w.generator.nicDev().pcie();

    Point p;
    p.gbps = runr.meter().gbps();
    uint64_t recovery = pcie1.ctxRecoveryBytes - pcie0.ctxRecoveryBytes;
    p.pciePct = 100.0 * w.generator.nicDev().pcieUtilization(recovery,
                                                             window);

    emitRegistrySnapshot(ctx, "fig16",
                         {{"loss", tagNum(loss)}, {"mode", kModeName[mode]}});
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Figure 16: loss at the sender (1 saturated core, 128 TLS "
                "streams)");

    const double losses[] = {0.0, 0.01, 0.02, 0.03, 0.04, 0.05};
    Point pts[6][3]; // [loss][mode]
    {
        Sweep sweep("fig16", opt);
        for (int li = 0; li < 6; li++) {
            for (int mode = 0; mode < 3; mode++) {
                double loss = losses[li];
                std::string label = strprintf("loss=%g/%s", loss,
                                              kModeName[mode]);
                sweep.add(label,
                          [&pts, li, mode, loss](sim::RunContext &ctx) {
                              pts[li][mode] = run(ctx, loss, mode);
                          });
            }
        }
        sweep.drain();
    }

    std::printf("%-8s %10s %10s %10s %12s %14s\n", "loss", "tcp", "offload",
                "tls(sw)", "off vs tcp", "recovery PCIe");
    for (int li = 0; li < 6; li++) {
        const Point *m = pts[li];
        std::printf("%-7.0f%% %10.2f %10.2f %10.2f %11.0f%% %13.2f%%\n",
                    losses[li] * 100, m[0].gbps, m[1].gbps, m[2].gbps,
                    100.0 * (m[1].gbps / m[0].gbps - 1.0), m[1].pciePct);
    }
    std::printf("\npaper: offload within -8..-11%% of tcp at all loss "
                "rates, >=33%% over software tls; recovery <=2.5%% of "
                "PCIe\n");
    return 0;
}
