/**
 * @file
 * Figure 16: packet-loss effect at the TLS *sender* — 128 iperf
 * streams from one saturated core, loss 0-5%: (a) throughput of
 * plain TCP vs TLS offload vs software TLS, (b) the PCIe bandwidth
 * the NIC spends re-reading message data for tx context recovery.
 * Paper: offload stays within 8-11% of plain TCP and >=33% above
 * software TLS even at 5% loss; recovery costs <=2.5% of PCIe.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Point
{
    double gbps;
    double pciePct; // context-recovery share of PCIe capacity
};

Point
run(double loss, int mode /*0=tcp 1=offload 2=tls*/)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = loss;
    lc.seed = 77;
    app::MacroWorld::Config cfg;
    cfg.serverCores = 8; // receiver must not be the bottleneck
    cfg.generatorCores = 1; // the measured, saturated sender core
    cfg.remoteStorage = false;
    cfg.link = lc;
    // Modest per-stream socket buffers: with 1 MB each, a single
    // software-TLS core spends >100 ms pre-encrypting the initial
    // 128-stream burst before any ack gets processed.
    cfg.generatorTcp.sndBufSize = 128 << 10;
    cfg.serverTcp.sndBufSize = 128 << 10;
    app::MacroWorld w(cfg);

    app::IperfConfig icfg;
    icfg.streams = 128;
    icfg.tlsEnabled = mode != 0;
    icfg.clientTls.txOffload = mode == 1;
    app::IperfRun runr(w.generator, app::MacroWorld::kGenIp, w.server,
                       app::MacroWorld::kSrvIp, icfg);
    runr.start();
    w.sim.runFor(20 * sim::kMillisecond);

    sim::Tick window = measureWindow(40 * sim::kMillisecond);
    nic::PcieStats pcie0 = w.generator.nicDev().pcie();
    runr.measureStart();
    w.sim.runFor(window);
    runr.measureStop();
    nic::PcieStats pcie1 = w.generator.nicDev().pcie();

    Point p;
    p.gbps = runr.meter().gbps();
    uint64_t recovery = pcie1.ctxRecoveryBytes - pcie0.ctxRecoveryBytes;
    p.pciePct = 100.0 * w.generator.nicDev().pcieUtilization(recovery,
                                                             window);

    static const char *kModeName[] = {"tcp", "offload", "tls"};
    emitRegistrySnapshot("fig16",
                         {{"loss", tagNum(loss)}, {"mode", kModeName[mode]}});
    return p;
}

} // namespace

int
main()
{
    printHeader("Figure 16: loss at the sender (1 saturated core, 128 TLS "
                "streams)");
    std::printf("%-8s %10s %10s %10s %12s %14s\n", "loss", "tcp", "offload",
                "tls(sw)", "off vs tcp", "recovery PCIe");
    for (double loss : {0.0, 0.01, 0.02, 0.03, 0.04, 0.05}) {
        Point tcp = run(loss, 0);
        Point off = run(loss, 1);
        Point sw = run(loss, 2);
        std::printf("%-7.0f%% %10.2f %10.2f %10.2f %11.0f%% %13.2f%%\n",
                    loss * 100, tcp.gbps, off.gbps, sw.gbps,
                    100.0 * (off.gbps / tcp.gbps - 1.0), off.pciePct);
    }
    std::printf("\npaper: offload within -8..-11%% of tcp at all loss "
                "rates, >=33%% over software tls; recovery <=2.5%% of "
                "PCIe\n");
    return 0;
}
