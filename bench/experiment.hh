/**
 * @file
 * ExperimentBuilder: a fluent facade over the world / topology /
 * flow / TLS / NVMe-TCP setup that benches and examples previously
 * copy-pasted. One chain configures the testbed:
 *
 *   auto ex = ExperimentBuilder()
 *                 .run(ctx)                 // per-run isolation
 *                 .serverCores(4).generatorCores(12)
 *                 .pageCache()              // or .remoteStorage(...)
 *                 .httpVariant(HttpVariant::OffloadZc)
 *                 .files(64, 256 << 10)
 *                 .connections(512)
 *                 .build();
 *
 * and the Experiment hands back the wired MacroWorld, the created
 * file ids, workload configs derived from the chosen variant, and
 * the shared warm-up / measurement-window bracketing.
 */

#ifndef ANIC_BENCH_EXPERIMENT_HH
#define ANIC_BENCH_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <vector>

#include "app/macro_world.hh"
#include "sim/run_context.hh"

namespace anic::bench {

/** nginx transport/offload variants (Figure 13 legend). */
enum class HttpVariant
{
    Http,      ///< no encryption (upper bound)
    Https,     ///< kTLS software crypto (baseline)
    Offload,   ///< TLS NIC offload, sendfile still copies
    OffloadZc, ///< TLS NIC offload + zero-copy sendfile
};

const char *variantName(HttpVariant v);

/** Storage-path offload selection for C1 scenarios. */
struct StorageVariant
{
    bool offload = false;    ///< NVMe-TCP CRC + copy offload
    bool tls = false;        ///< NVMe-TLS transport
    bool tlsOffload = false; ///< offload the storage TLS too
};

class Experiment;

class ExperimentBuilder
{
  public:
    ExperimentBuilder();

    /** Binds the world to @p ctx's registry/trace ring and scales
     *  measurement windows by its RunConfig. */
    ExperimentBuilder &run(sim::RunContext &ctx);

    // ------------------------------------------------- topology
    ExperimentBuilder &serverCores(int n);
    ExperimentBuilder &generatorCores(int n);
    /** NIC TX/RX queue pairs per node (0 = one pair per core). */
    ExperimentBuilder &nicQueues(int n);
    /** Interrupt coalescing: fire after @p pkts completions or
     *  @p delay after the first, whichever comes first. */
    ExperimentBuilder &nicCoalescing(uint32_t pkts, sim::Tick delay);
    /** NIC context-cache eviction policy (flow-scale studies). */
    ExperimentBuilder &nicCtxPolicy(nic::CtxPolicy p);
    /** NIC context-cache capacity in contexts (default 20000). */
    ExperimentBuilder &nicCtxCacheCapacity(size_t contexts);
    ExperimentBuilder &link(const net::Link::Config &lc);
    /** Congestion control for both endpoints (dctcp implies ECN). */
    ExperimentBuilder &tcpCc(tcp::CcAlgo algo);
    /** Requests ECN on both endpoints' handshakes. */
    ExperimentBuilder &tcpEcn(bool on);
    ExperimentBuilder &serverSndBuf(size_t bytes);
    ExperimentBuilder &serverRcvBuf(size_t bytes);
    ExperimentBuilder &generatorSndBuf(size_t bytes);
    ExperimentBuilder &generatorRcvBuf(size_t bytes);

    // -------------------------------------------------- storage
    /** C2: all content served from the page cache (prewarmed). */
    ExperimentBuilder &pageCache();
    /** C1: content on the generator-side drive over NVMe-TCP, with
     *  the given storage-path offloads. */
    ExperimentBuilder &remoteStorage(const StorageVariant &v = {});

    // ------------------------------------------------- workload
    /** HTTPS file serving; maps the variant onto server/client TLS
     *  and sendfile knobs (and nginx-style client buffers). */
    ExperimentBuilder &httpVariant(HttpVariant v);
    /** Secure-KV serving; @p offload drives client-facing TLS
     *  offload + zero-copy like the §5.3 combined scenario. */
    ExperimentBuilder &kvOffload(bool offload);
    ExperimentBuilder &files(int count, uint64_t bytes);
    ExperimentBuilder &connections(int n);

    /** Wires the world (attaching storage/NVMe-TCP per the storage
     *  choice), creates + prewarms files, derives workload configs. */
    std::unique_ptr<Experiment> build();

  private:
    app::MacroWorld::Config cfg_;
    sim::RunContext *ctx_ = nullptr;
    bool haveHttp_ = false;
    HttpVariant http_ = HttpVariant::Https;
    bool haveKv_ = false;
    bool kvOffload_ = false;
    int fileCount_ = 0;
    uint64_t fileBytes_ = 0;
    int connections_ = 16;
};

class Experiment
{
  public:
    app::MacroWorld &world() { return *world_; }
    core::Node &server() { return world_->server; }
    core::Node &generator() { return world_->generator; }
    sim::Simulator &sim() { return world_->sim; }
    sim::RunContext *runCtx() { return ctx_; }

    const std::vector<uint32_t> &fileIds() const { return fileIds_; }

    /** Server-side workload config for the chosen variant. */
    const app::HttpServerConfig &httpServerCfg() const { return httpServer_; }
    const app::KvServerConfig &kvServerCfg() const { return kvServer_; }

    /** Client config with connections/fileIds/keys pre-filled. */
    app::HttpClientConfig httpClientCfg() const;
    app::KvClientConfig kvClientCfg() const;

    /** Runs the simulation for @p t (warm-up, connection ramp). */
    void warm(sim::Tick t) { world_->sim.runFor(t); }

    /** Quick-mode-scaled measurement window (never zero). */
    sim::Tick scaledWindow(sim::Tick full) const;

    /**
     * Measurement-window bracketing on @p dut: snapshots busy cores,
     * calls @p start, runs the (already scaled) window, calls
     * @p stop; returns the average busy cores over the window.
     */
    double measure(core::Node &dut, sim::Tick window,
                   const std::function<void()> &start,
                   const std::function<void()> &stop);

    /** Same, with the server as the device under test. */
    double
    measure(sim::Tick window, const std::function<void()> &start,
            const std::function<void()> &stop)
    {
        return measure(server(), window, start, stop);
    }

  private:
    friend class ExperimentBuilder;
    Experiment() = default;

    std::unique_ptr<app::MacroWorld> world_;
    sim::RunContext *ctx_ = nullptr;
    std::vector<uint32_t> fileIds_;
    app::HttpServerConfig httpServer_;
    app::HttpClientConfig httpClient_;
    app::KvServerConfig kvServer_;
    app::KvClientConfig kvClient_;
    int connections_ = 16;
};

} // namespace anic::bench

#endif // ANIC_BENCH_EXPERIMENT_HH
