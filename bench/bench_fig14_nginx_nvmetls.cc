/**
 * @file
 * Figure 14: nginx with the combined NVMe-TLS offload in C1: client
 * traffic is https (TLS offload at the server) and the storage path
 * runs NVMe-TCP over TLS with the composed rx offload (TLS decrypt ->
 * CRC verify + zero-copy placement). Paper: 1-core gains 16%..2.8x
 * growing with file size; 8 cores saturate the drive with up to 41%
 * fewer busy cores.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Figure 14: nginx + combined NVMe-TLS offload, C1 "
                "(drive-bound, https clients, TLS-wrapped storage)");

    const uint64_t kibs[] = {4, 16, 64, 256};
    NginxResult r[4][2][2]; // [size][cores8][offload]
    {
        Sweep sweep("fig14", opt);
        for (int ki = 0; ki < 4; ki++) {
            for (int cores8 = 0; cores8 < 2; cores8++) {
                for (int off = 0; off < 2; off++) {
                    uint64_t kib = kibs[ki];
                    std::string label =
                        strprintf("kib=%llu/cores=%d/off=%d",
                                  static_cast<unsigned long long>(kib),
                                  cores8 ? 8 : 1, off);
                    sweep.add(label, [&r, ki, cores8, off,
                                      kib](sim::RunContext &ctx) {
                        NginxParams p;
                        p.serverCores = cores8 ? 8 : 1;
                        p.generatorCores = 16;
                        p.fileSize = kib << 10;
                        p.c1 = true;
                        // Few enough connections that the all-software
                        // baseline reaches steady state before the
                        // window (see the fig13 note on burst
                        // transients).
                        p.connections = cores8 ? 256 : 96;
                        p.serverSndBuf = 256 << 10;
                        p.warmup = cores8 ? 60 * sim::kMillisecond
                                          : 120 * sim::kMillisecond;
                        p.storage.tls = true; // NVMe over TLS both ways
                        if (off) {
                            p.variant = HttpVariant::OffloadZc;
                            p.storage.offload = true;    // CRC + copy
                            p.storage.tlsOffload = true; // storage TLS rx
                        } else {
                            p.variant = HttpVariant::Https; // all software
                        }
                        p.bench = "fig14";
                        p.scenario = {
                            {"file_kib", tagNum(static_cast<double>(kib))},
                            {"cores", tagNum(p.serverCores)},
                            {"offload", off ? "1" : "0"}};
                        r[ki][cores8][off] = runNginx(ctx, p);
                    });
                }
            }
        }
        sweep.drain();
    }

    std::printf("%-10s | %10s %10s %7s | %10s %10s %7s | %9s %9s\n",
                "file[KiB]", "base 1c", "off 1c", "gain", "base 8c",
                "off 8c", "gain", "busy base", "busy off");
    for (int ki = 0; ki < 4; ki++) {
        const auto &x = r[ki];
        std::printf("%-10llu | %10.2f %10.2f %6.0f%% | %10.2f %10.2f %6.0f%% "
                    "| %9.2f %9.2f\n",
                    static_cast<unsigned long long>(kibs[ki]), x[0][0].gbps,
                    x[0][1].gbps,
                    100.0 * (x[0][1].gbps / x[0][0].gbps - 1.0), x[1][0].gbps,
                    x[1][1].gbps,
                    100.0 * (x[1][1].gbps / x[1][0].gbps - 1.0),
                    x[1][0].busyCores, x[1][1].busyCores);
    }
    std::printf("\npaper: 1-core gains 16%%..2.8x; 8-core gains 9-75%% "
                "until the drive saturates, then up to 41%% fewer busy "
                "cores\n");
    return 0;
}
