/**
 * @file
 * Figure 17: packet-loss effect at the TLS *receiver* — one saturated
 * receiver core, 128 streams, loss 0-5%: (a) throughput of tcp vs rx
 * offload vs software tls, (b) classification of records into
 * entirely / partially / not offloaded. Paper: even at 5% loss more
 * than half the records stay fully offloaded and the offload keeps a
 * 19% edge over software TLS.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Point
{
    double gbps;
    double fullPct, partialPct, nonePct;
};

Point
run(double loss, int mode /*0=tcp 1=offload 2=tls*/)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = loss;
    lc.seed = 78;
    app::MacroWorld::Config cfg;
    cfg.serverCores = 1;    // the measured, saturated receiver core
    cfg.generatorCores = 8; // sender must not be the bottleneck
    cfg.remoteStorage = false;
    cfg.link = lc;
    // Modest per-stream socket buffers: with 1 MB each, a single
    // software-TLS core spends >100 ms pre-encrypting the initial
    // 128-stream burst before any ack gets processed.
    cfg.generatorTcp.sndBufSize = 128 << 10;
    cfg.serverTcp.sndBufSize = 128 << 10;
    app::MacroWorld w(cfg);

    app::IperfConfig icfg;
    icfg.streams = 128;
    icfg.tlsEnabled = mode != 0;
    icfg.serverTls.rxOffload = mode == 1;
    app::IperfRun runr(w.generator, app::MacroWorld::kGenIp, w.server,
                       app::MacroWorld::kSrvIp, icfg);
    runr.start();
    w.sim.runFor(20 * sim::kMillisecond);

    sim::Tick window = measureWindow(40 * sim::kMillisecond);
    tls::TlsStats s0 = runr.receiverTlsStats();
    runr.measureStart();
    w.sim.runFor(window);
    runr.measureStop();
    tls::TlsStats s1 = runr.receiverTlsStats();

    Point p;
    p.gbps = runr.meter().gbps();
    double full = static_cast<double>(s1.rxFullyOffloaded -
                                      s0.rxFullyOffloaded);
    double part = static_cast<double>(s1.rxPartiallyOffloaded -
                                      s0.rxPartiallyOffloaded);
    double none = static_cast<double>(s1.rxNotOffloaded -
                                      s0.rxNotOffloaded);
    double total = full + part + none;
    p.fullPct = total > 0 ? 100.0 * full / total : 0;
    p.partialPct = total > 0 ? 100.0 * part / total : 0;
    p.nonePct = total > 0 ? 100.0 * none / total : 0;

    static const char *kModeName[] = {"tcp", "offload", "tls"};
    emitRegistrySnapshot("fig17",
                         {{"loss", tagNum(loss)}, {"mode", kModeName[mode]}});
    return p;
}

} // namespace

int
main()
{
    printHeader("Figure 17: loss at the receiver (1 saturated core, 128 "
                "TLS streams)");
    std::printf("%-8s %10s %10s %10s %11s | %7s %8s %6s\n", "loss", "tcp",
                "offload", "tls(sw)", "off vs sw", "full", "partial",
                "none");
    for (double loss : {0.0, 0.01, 0.02, 0.03, 0.04, 0.05}) {
        Point tcp = run(loss, 0);
        Point off = run(loss, 1);
        Point sw = run(loss, 2);
        std::printf("%-7.0f%% %10.2f %10.2f %10.2f %10.0f%% | %6.0f%% "
                    "%7.0f%% %5.0f%%\n",
                    loss * 100, tcp.gbps, off.gbps, sw.gbps,
                    100.0 * (off.gbps / sw.gbps - 1.0), off.fullPct,
                    off.partialPct, off.nonePct);
    }
    std::printf("\npaper: >=19%% over software tls even at 5%% loss; more "
                "than half of records remain fully offloaded\n");
    return 0;
}
