/**
 * @file
 * Figure 17: packet-loss effect at the TLS *receiver* — one saturated
 * receiver core, 128 streams, loss 0-5%: (a) throughput of tcp vs rx
 * offload vs software tls, (b) classification of records into
 * entirely / partially / not offloaded. Paper: even at 5% loss more
 * than half the records stay fully offloaded and the offload keeps a
 * 19% edge over software TLS.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Point
{
    double gbps = 0;
    double fullPct = 0, partialPct = 0, nonePct = 0;
};

const char *kModeName[] = {"tcp", "offload", "tls"};

Point
run(sim::RunContext &ctx, double loss, int mode /*0=tcp 1=offload 2=tls*/)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = loss;
    lc.seed = 78;
    auto ex = ExperimentBuilder()
                  .run(ctx)
                  .serverCores(1)    // the measured, saturated receiver core
                  .generatorCores(8) // sender must not be the bottleneck
                  .pageCache()
                  .link(lc)
                  // Modest per-stream socket buffers: with 1 MB each, a
                  // single software-TLS core spends >100 ms
                  // pre-encrypting the initial 128-stream burst before
                  // any ack gets processed.
                  .generatorSndBuf(128 << 10)
                  .serverSndBuf(128 << 10)
                  .build();
    app::MacroWorld &w = ex->world();

    app::IperfConfig icfg;
    icfg.streams = 128;
    icfg.tlsEnabled = mode != 0;
    icfg.serverTls.rxOffload = mode == 1;
    app::IperfRun runr(w.generator, app::MacroWorld::kGenIp, w.server,
                       app::MacroWorld::kSrvIp, icfg);
    runr.start();
    ex->warm(20 * sim::kMillisecond);

    sim::Tick window = ex->scaledWindow(40 * sim::kMillisecond);
    tls::TlsStats s0 = runr.receiverTlsStats();
    ex->measure(
        window, [&] { runr.measureStart(); }, [&] { runr.measureStop(); });
    tls::TlsStats s1 = runr.receiverTlsStats();

    Point p;
    p.gbps = runr.meter().gbps();
    double full = static_cast<double>(s1.rxFullyOffloaded -
                                      s0.rxFullyOffloaded);
    double part = static_cast<double>(s1.rxPartiallyOffloaded -
                                      s0.rxPartiallyOffloaded);
    double none = static_cast<double>(s1.rxNotOffloaded -
                                      s0.rxNotOffloaded);
    double total = full + part + none;
    p.fullPct = total > 0 ? 100.0 * full / total : 0;
    p.partialPct = total > 0 ? 100.0 * part / total : 0;
    p.nonePct = total > 0 ? 100.0 * none / total : 0;

    emitRegistrySnapshot(ctx, "fig17",
                         {{"loss", tagNum(loss)}, {"mode", kModeName[mode]}});
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Figure 17: loss at the receiver (1 saturated core, 128 "
                "TLS streams)");

    const double losses[] = {0.0, 0.01, 0.02, 0.03, 0.04, 0.05};
    Point pts[6][3]; // [loss][mode]
    {
        Sweep sweep("fig17", opt);
        for (int li = 0; li < 6; li++) {
            for (int mode = 0; mode < 3; mode++) {
                double loss = losses[li];
                std::string label = strprintf("loss=%g/%s", loss,
                                              kModeName[mode]);
                sweep.add(label,
                          [&pts, li, mode, loss](sim::RunContext &ctx) {
                              pts[li][mode] = run(ctx, loss, mode);
                          });
            }
        }
        sweep.drain();
    }

    std::printf("%-8s %10s %10s %10s %11s | %7s %8s %6s\n", "loss", "tcp",
                "offload", "tls(sw)", "off vs sw", "full", "partial",
                "none");
    for (int li = 0; li < 6; li++) {
        const Point *m = pts[li];
        std::printf("%-7.0f%% %10.2f %10.2f %10.2f %10.0f%% | %6.0f%% "
                    "%7.0f%% %5.0f%%\n",
                    losses[li] * 100, m[0].gbps, m[1].gbps, m[2].gbps,
                    100.0 * (m[1].gbps / m[2].gbps - 1.0), m[1].fullPct,
                    m[1].partialPct, m[1].nonePct);
    }
    std::printf("\npaper: >=19%% over software tls even at 5%% loss; more "
                "than half of records remain fully offloaded\n");
    return 0;
}
