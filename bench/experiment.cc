#include "experiment.hh"

namespace anic::bench {

const char *
variantName(HttpVariant v)
{
    switch (v) {
      case HttpVariant::Http:
        return "http";
      case HttpVariant::Https:
        return "https";
      case HttpVariant::Offload:
        return "offload";
      case HttpVariant::OffloadZc:
        return "offload+zc";
    }
    return "?";
}

ExperimentBuilder::ExperimentBuilder()
{
    cfg_.remoteStorage = false;
}

ExperimentBuilder &
ExperimentBuilder::run(sim::RunContext &ctx)
{
    ctx_ = &ctx;
    cfg_.run = &ctx;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::serverCores(int n)
{
    cfg_.serverCores = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::generatorCores(int n)
{
    cfg_.generatorCores = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::nicQueues(int n)
{
    cfg_.nicCfg.numQueues = n;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::nicCoalescing(uint32_t pkts, sim::Tick delay)
{
    cfg_.nicCfg.coalescePkts = pkts;
    cfg_.nicCfg.coalesceDelay = delay;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::nicCtxPolicy(nic::CtxPolicy p)
{
    cfg_.nicCfg.ctxPolicy = p;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::nicCtxCacheCapacity(size_t contexts)
{
    cfg_.nicCfg.ctxCacheCapacity = contexts;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::link(const net::Link::Config &lc)
{
    cfg_.link = lc;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::tcpCc(tcp::CcAlgo algo)
{
    cfg_.serverTcp.cc = algo;
    cfg_.generatorTcp.cc = algo;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::tcpEcn(bool on)
{
    cfg_.serverTcp.ecn = on;
    cfg_.generatorTcp.ecn = on;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::serverSndBuf(size_t bytes)
{
    cfg_.serverTcp.sndBufSize = bytes;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::serverRcvBuf(size_t bytes)
{
    cfg_.serverTcp.rcvBufSize = bytes;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::generatorSndBuf(size_t bytes)
{
    cfg_.generatorTcp.sndBufSize = bytes;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::generatorRcvBuf(size_t bytes)
{
    cfg_.generatorTcp.rcvBufSize = bytes;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::pageCache()
{
    cfg_.remoteStorage = false;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::remoteStorage(const StorageVariant &v)
{
    cfg_.remoteStorage = true;
    cfg_.storage.pageCacheBytes = 0; // C1: every request misses
    cfg_.storage.offloadEnabled = v.offload;
    cfg_.storage.offload.crcRx = v.offload;
    cfg_.storage.offload.copyRx = v.offload;
    cfg_.storage.tlsTransport = v.tls;
    cfg_.storage.tlsCfg.rxOffload = v.tlsOffload;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::httpVariant(HttpVariant v)
{
    haveHttp_ = true;
    http_ = v;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::kvOffload(bool offload)
{
    haveKv_ = true;
    kvOffload_ = offload;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::files(int count, uint64_t bytes)
{
    fileCount_ = count;
    fileBytes_ = bytes;
    return *this;
}

ExperimentBuilder &
ExperimentBuilder::connections(int n)
{
    connections_ = n;
    return *this;
}

std::unique_ptr<Experiment>
ExperimentBuilder::build()
{
    if (haveHttp_) {
        // HTTP clients only ever send small requests, but the send
        // ring allocates its full capacity on first use — at 128K
        // connections a 1 MB default would be ~128 GB.
        cfg_.generatorTcp.sndBufSize = 64 << 10;
    }

    auto ex = std::unique_ptr<Experiment>(new Experiment());
    ex->ctx_ = ctx_;
    ex->connections_ = connections_;
    ex->world_ = std::make_unique<app::MacroWorld>(cfg_);
    if (fileCount_ > 0)
        ex->fileIds_ = ex->world_->makeFiles(fileCount_, fileBytes_);
    if (!cfg_.remoteStorage)
        ex->world_->storage->prewarm();

    if (haveHttp_) {
        switch (http_) {
          case HttpVariant::Http:
            break;
          case HttpVariant::Https:
            ex->httpServer_.tlsEnabled = true;
            ex->httpClient_.tlsEnabled = true;
            break;
          case HttpVariant::Offload:
            ex->httpServer_.tlsEnabled = true;
            ex->httpServer_.tlsCfg.txOffload = true;
            ex->httpServer_.tlsCfg.rxOffload = true;
            ex->httpClient_.tlsEnabled = true;
            break;
          case HttpVariant::OffloadZc:
            ex->httpServer_.tlsEnabled = true;
            ex->httpServer_.tlsCfg.txOffload = true;
            ex->httpServer_.tlsCfg.rxOffload = true;
            ex->httpServer_.tlsCfg.zerocopySendfile = true;
            ex->httpClient_.tlsEnabled = true;
            break;
        }
    }
    if (haveKv_) {
        ex->kvServer_.tlsEnabled = true; // client-facing TLS
        ex->kvServer_.tlsCfg.txOffload = kvOffload_;
        ex->kvServer_.tlsCfg.rxOffload = kvOffload_;
        ex->kvServer_.tlsCfg.zerocopySendfile = kvOffload_;
        ex->kvClient_.tlsEnabled = true;
    }
    return ex;
}

app::HttpClientConfig
Experiment::httpClientCfg() const
{
    app::HttpClientConfig c = httpClient_;
    c.connections = connections_;
    c.fileIds = fileIds_;
    return c;
}

app::KvClientConfig
Experiment::kvClientCfg() const
{
    app::KvClientConfig c = kvClient_;
    c.connections = connections_;
    c.keyCount = static_cast<uint32_t>(fileIds_.size());
    return c;
}

sim::Tick
Experiment::scaledWindow(sim::Tick full) const
{
    if (ctx_ != nullptr)
        return ctx_->scaleWindow(full);
    return full == 0 ? 0 : (full < 1 ? 1 : full);
}

double
Experiment::measure(core::Node &dut, sim::Tick window,
                    const std::function<void()> &start,
                    const std::function<void()> &stop)
{
    std::vector<sim::Tick> busy = dut.busySnapshot();
    if (start)
        start();
    world_->sim.runFor(window);
    if (stop)
        stop();
    return dut.busyCores(busy, window);
}

} // namespace anic::bench
