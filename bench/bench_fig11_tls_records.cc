/**
 * @file
 * Figure 11: kernel-TLS iperf cycles per record for record sizes of
 * 2-16 KiB, transmit and receive, split into crypto vs other. The
 * paper reports crypto taking 61-70% (tx) and 54-60% (rx) of record
 * processing at these sizes.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Point
{
    double cyclesPerRecord;
    double cryptoPct;
};

Point
measure(size_t recordSize, bool rxSide)
{
    app::MacroWorld::Config cfg;
    cfg.serverCores = 1;
    cfg.generatorCores = rxSide ? 4 : 1;
    cfg.remoteStorage = false;
    app::MacroWorld w(cfg);

    app::IperfConfig icfg;
    icfg.streams = rxSide ? 4 : 1;
    icfg.clientTls.recordSize = recordSize;
    icfg.serverTls.recordSize = recordSize;

    core::Node &sender = w.generator;
    core::Node &receiver = w.server;
    app::IperfRun run(sender, app::MacroWorld::kGenIp, receiver,
                      app::MacroWorld::kSrvIp, icfg);
    run.start();
    w.sim.runFor(10 * sim::kMillisecond);

    sim::Tick window = measureWindow(30 * sim::kMillisecond);
    core::Node &dut = rxSide ? receiver : sender;
    std::vector<double> cyc = dut.cycleSnapshot();
    tls::TlsStats st0 = rxSide ? run.receiverTlsStats()
                               : run.senderTlsStats();
    w.sim.runFor(window);
    double cycles = dut.busyCyclesSince(cyc);
    tls::TlsStats st1 = rxSide ? run.receiverTlsStats()
                               : run.senderTlsStats();
    double records = rxSide
                         ? static_cast<double>(st1.recordsRx - st0.recordsRx)
                         : static_cast<double>(st1.recordsTx - st0.recordsTx);
    double bytes = rxSide ? static_cast<double>(st1.plaintextBytesRx -
                                                st0.plaintextBytesRx)
                          : static_cast<double>(st1.plaintextBytesTx -
                                                st0.plaintextBytesTx);

    host::CycleModel m;
    double crypto_per_rec =
        (rxSide ? m.aesGcmDecryptPerByte : m.aesGcmEncryptPerByte) *
        (records > 0 ? bytes / records : 0.0);

    Point p;
    p.cyclesPerRecord = records > 0 ? cycles / records : 0;
    p.cryptoPct = p.cyclesPerRecord > 0
                      ? 100.0 * crypto_per_rec / p.cyclesPerRecord
                      : 0;

    emitRegistrySnapshot(
        "fig11", {{"record_kib", tagNum(static_cast<double>(recordSize >> 10))},
                  {"side", rxSide ? "rx" : "tx"}});
    return p;
}

} // namespace

int
main()
{
    printHeader("Figure 11: kTLS/iperf per-record cycles (software path), "
                "AES-GCM crypto vs other");
    std::printf("%-12s %16s %10s %16s %10s\n", "record[KiB]", "tx cyc/rec",
                "tx crypto", "rx cyc/rec", "rx crypto");
    for (size_t kib : {2, 4, 8, 16}) {
        Point tx = measure(kib << 10, false);
        Point rx = measure(kib << 10, true);
        std::printf("%-12zu %16.0f %9.0f%% %16.0f %9.0f%%\n", kib,
                    tx.cyclesPerRecord, tx.cryptoPct, rx.cyclesPerRecord,
                    rx.cryptoPct);
        std::string rec = std::to_string(kib);
        jsonRecord("fig11", "tx_cycles_per_record", tx.cyclesPerRecord,
                   {{"record_kib", rec}});
        jsonRecord("fig11", "tx_crypto_pct", tx.cryptoPct,
                   {{"record_kib", rec}});
        jsonRecord("fig11", "rx_cycles_per_record", rx.cyclesPerRecord,
                   {{"record_kib", rec}});
        jsonRecord("fig11", "rx_crypto_pct", rx.cryptoPct,
                   {{"record_kib", rec}});
    }
    std::printf("\npaper: crypto share grows with record size; tx <=74%%, "
                "rx <=60%% at 16 KiB\n");
    return 0;
}
