/**
 * @file
 * Figure 11: kernel-TLS iperf cycles per record for record sizes of
 * 2-16 KiB, transmit and receive, split into crypto vs other. The
 * paper reports crypto taking 61-70% (tx) and 54-60% (rx) of record
 * processing at these sizes.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Point
{
    double cyclesPerRecord = 0;
    double cryptoPct = 0;
};

Point
measure(sim::RunContext &ctx, size_t recordSize, bool rxSide)
{
    auto ex = ExperimentBuilder()
                  .run(ctx)
                  .serverCores(1)
                  .generatorCores(rxSide ? 4 : 1)
                  .pageCache()
                  .build();
    app::MacroWorld &w = ex->world();

    app::IperfConfig icfg;
    icfg.streams = rxSide ? 4 : 1;
    icfg.clientTls.recordSize = recordSize;
    icfg.serverTls.recordSize = recordSize;

    core::Node &sender = w.generator;
    core::Node &receiver = w.server;
    app::IperfRun run(sender, app::MacroWorld::kGenIp, receiver,
                      app::MacroWorld::kSrvIp, icfg);
    run.start();
    ex->warm(10 * sim::kMillisecond);

    sim::Tick window = ex->scaledWindow(30 * sim::kMillisecond);
    core::Node &dut = rxSide ? receiver : sender;
    std::vector<double> cyc = dut.cycleSnapshot();
    tls::TlsStats st0 = rxSide ? run.receiverTlsStats()
                               : run.senderTlsStats();
    ex->warm(window);
    double cycles = dut.busyCyclesSince(cyc);
    tls::TlsStats st1 = rxSide ? run.receiverTlsStats()
                               : run.senderTlsStats();
    double records = rxSide
                         ? static_cast<double>(st1.recordsRx - st0.recordsRx)
                         : static_cast<double>(st1.recordsTx - st0.recordsTx);
    double bytes = rxSide ? static_cast<double>(st1.plaintextBytesRx -
                                                st0.plaintextBytesRx)
                          : static_cast<double>(st1.plaintextBytesTx -
                                                st0.plaintextBytesTx);

    host::CycleModel m;
    double crypto_per_rec =
        (rxSide ? m.aesGcmDecryptPerByte : m.aesGcmEncryptPerByte) *
        (records > 0 ? bytes / records : 0.0);

    Point p;
    p.cyclesPerRecord = records > 0 ? cycles / records : 0;
    p.cryptoPct = p.cyclesPerRecord > 0
                      ? 100.0 * crypto_per_rec / p.cyclesPerRecord
                      : 0;

    emitRegistrySnapshot(
        ctx,
        "fig11", {{"record_kib", tagNum(static_cast<double>(recordSize >> 10))},
                  {"side", rxSide ? "rx" : "tx"}});
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Figure 11: kTLS/iperf per-record cycles (software path), "
                "AES-GCM crypto vs other");

    const size_t kibs[] = {2, 4, 8, 16};
    Point pts[4][2]; // [size][tx=0 rx=1]
    {
        Sweep sweep("fig11", opt);
        for (int ki = 0; ki < 4; ki++) {
            for (int rx = 0; rx < 2; rx++) {
                size_t kib = kibs[ki];
                std::string label = strprintf("rec=%zuK/%s", kib,
                                              rx ? "rx" : "tx");
                sweep.add(label, [&pts, ki, rx, kib](sim::RunContext &ctx) {
                    Point p = measure(ctx, kib << 10, rx == 1);
                    pts[ki][rx] = p;
                    std::string rec = std::to_string(kib);
                    const char *side = rx ? "rx" : "tx";
                    jsonRecord(ctx, "fig11",
                               strprintf("%s_cycles_per_record", side)
                                   .c_str(),
                               p.cyclesPerRecord, {{"record_kib", rec}});
                    jsonRecord(ctx, "fig11",
                               strprintf("%s_crypto_pct", side).c_str(),
                               p.cryptoPct, {{"record_kib", rec}});
                });
            }
        }
        sweep.drain();
    }

    std::printf("%-12s %16s %10s %16s %10s\n", "record[KiB]", "tx cyc/rec",
                "tx crypto", "rx cyc/rec", "rx crypto");
    for (int ki = 0; ki < 4; ki++) {
        std::printf("%-12zu %16.0f %9.0f%% %16.0f %9.0f%%\n", kibs[ki],
                    pts[ki][0].cyclesPerRecord, pts[ki][0].cryptoPct,
                    pts[ki][1].cyclesPerRecord, pts[ki][1].cryptoPct);
    }
    std::printf("\npaper: crypto share grows with record size; tx <=74%%, "
                "rx <=60%% at 16 KiB\n");
    return 0;
}
