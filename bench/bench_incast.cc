/**
 * @file
 * Incast macrobenchmark: N TLS senders converge on one rx-offloaded
 * receiver in synchronized burst rounds — the partition/aggregate
 * microburst that stresses both the congestion controller (shared
 * bottleneck queue, synchronized loss) and the autonomous rx offload
 * (every drop or reorder inside a burst forces the NIC to resync on
 * live traffic). The sweep crosses fan-in x congestion-control
 * algorithm x offload on/off and reports, per point, the offload hit
 * rate (fully-offloaded records / all records), resync pressure,
 * retransmit/ECN activity, and burst completion time.
 *
 * The link carries mild loss + reordering toward the receiver so
 * resyncs actually happen; DCTCP points additionally get the step CE
 * marker (ecnMarkThresholdBytes) its control law expects, so the
 * cwnd trajectory differs by algorithm while the offload oracle stays
 * the same: every plaintext byte delivered, regardless.
 *
 * When ANIC_SIMSPEED_TRAJECTORY names a file, one summary line with
 * schema "anic.incast.v1" (per-point hit rate + resync counts for the
 * offloaded points) is appended next to the simspeed records.
 */

#include <cstdlib>
#include <ctime>
#include <memory>

#include "bench_common.hh"
#include "core/node.hh"
#include "tls/ktls.hh"

using namespace anic;
using namespace anic::bench;

namespace {

constexpr net::IpAddr kGenIp = net::makeIp(10, 1, 0, 1);
constexpr net::IpAddr kSrvIp = net::makeIp(10, 1, 0, 2);
constexpr uint16_t kPort = 443;
constexpr uint64_t kTlsSecret = 0x1ca57;
constexpr size_t kRecordSize = 4096;
constexpr sim::Tick kPoll = 100 * sim::kMicrosecond;
constexpr sim::Tick kStart = 1 * sim::kMillisecond;

struct IncastParams
{
    int fanIn = 8;
    tcp::CcAlgo cc = tcp::CcAlgo::Reno;
    bool offload = true;
    uint64_t bytesPerSender = 64 << 10;
    uint32_t rounds = 3;
    sim::Tick gap = 2 * sim::kMillisecond;
};

struct PointResult
{
    bool completed = false;
    double hitRate = 0;      ///< fully-offloaded records / all records
    uint64_t resyncReq = 0;  ///< rx resync requests at the receiver NIC
    uint64_t resyncConf = 0; ///< of those, confirmed back in sync
    uint64_t fastRetx = 0;   ///< sender fast retransmits
    uint64_t rtoFires = 0;   ///< sender RTO fires
    uint64_t ecnMarked = 0;  ///< CE marks applied toward the receiver
    uint64_t cwndReductions = 0; ///< sender ECN-echo cwnd cuts
    double completionMs = 0; ///< first byte burst start -> all delivered
    double goodputGbps = 0;  ///< plaintext over the completion window
};

/**
 * One incast world: sender node "gen" (all N flows), receiver node
 * "srv" whose accepted connections each get an rx-offload(-able) TLS
 * socket. Burst round k releases bytesPerSender more bytes to every
 * sender at kStart + k*gap.
 */
class IncastWorld
{
  public:
    IncastWorld(sim::RunContext &ctx, const IncastParams &p)
        : p_(p), link_(sim_, linkCfg(p)),
          gen_(sim_, nodeCfg(ctx, p, "gen", 11)),
          srv_(sim_, nodeCfg(ctx, p, "srv", 22))
    {
        gen_.attachPort(link_, 0, kGenIp);
        srv_.attachPort(link_, 1, kSrvIp);
        srvTlsCfg_.recordSize = kRecordSize;
        srvTlsCfg_.rxOffload = p.offload;
        srvTlsCfg_.aggregate = &srvAgg_;
        cliTlsCfg_.recordSize = kRecordSize;

        srv_.stack().listen(kPort, srv_.tcpConfig(),
                            [this](tcp::TcpConnection &c) { accept(c); });
        senders_.resize(static_cast<size_t>(p.fanIn));
        for (int i = 0; i < p.fanIn; i++) {
            size_t idx = static_cast<size_t>(i);
            sim_.schedule(kStart, [this, idx] { open(idx); });
        }
        roundsOpen_ = 1;
        for (uint32_t k = 1; k < p.rounds; k++)
            sim_.schedule(kStart + k * p.gap, [this] {
                roundsOpen_++;
                for (size_t i = 0; i < senders_.size(); i++)
                    pump(i);
            });
    }

    uint64_t
    expectedBytes() const
    {
        return static_cast<uint64_t>(p_.fanIn) * p_.rounds *
               p_.bytesPerSender;
    }

    bool done() const { return delivered_ >= expectedBytes(); }
    uint64_t delivered() const { return delivered_; }
    sim::Simulator &sim() { return sim_; }
    core::Node &gen() { return gen_; }
    const net::Link &link() const { return link_; }
    const tls::TlsStats &srvTls() const { return srvAgg_; }

  private:
    struct Sender
    {
        tcp::TcpConnection *conn = nullptr;
        std::unique_ptr<tls::TlsSocket> tls;
        uint64_t sent = 0;
    };

    struct Receiver
    {
        std::unique_ptr<tls::TlsSocket> tls;
    };

    static net::Link::Config
    linkCfg(const IncastParams &p)
    {
        net::Link::Config c;
        c.seed = 0x11ca57;
        // Mild loss + reordering toward the receiver: enough that the
        // NIC's rx FSM pays real resyncs inside the bursts, low enough
        // that an autonomous offload keeps a high hit rate (Figure 18
        // already collapses full offload at percent-level reordering).
        c.dir[0].lossRate = 0.001;
        c.dir[0].reorderRate = 0.003;
        c.dir[0].reorderExtraDelay = 10 * sim::kMicrosecond;
        // DCTCP marking: the step threshold watches the link's
        // in-propagation queue (small — a bandwidth-delay product),
        // plus a low marking rate so bursts see CE even between queue
        // spikes.
        if (p.cc == tcp::CcAlgo::Dctcp) {
            c.dir[0].ecnMarkThresholdBytes = 4 << 10;
            c.dir[0].ecnMarkRate = 0.02;
        }
        return c;
    }

    static core::Node::Config
    nodeCfg(sim::RunContext &ctx, const IncastParams &p, const char *name,
            uint64_t seed)
    {
        core::Node::Config c;
        c.name = name;
        c.stackSeed = seed;
        c.tcpCfg.cc = p.cc;
        c.bindRun(ctx);
        return c;
    }

    void
    open(size_t i)
    {
        tcp::TcpConnection &c =
            gen_.stack().connect(kGenIp, kSrvIp, kPort, gen_.tcpConfig());
        senders_[i].conn = &c;
        c.setOnConnected([this, i, &c] {
            senders_[i].tls = std::make_unique<tls::TlsSocket>(
                c, tls::SessionKeys::derive(kTlsSecret, true), cliTlsCfg_);
            senders_[i].tls->setOnWritable([this, i] { pump(i); });
            pump(i);
        });
    }

    void
    pump(size_t i)
    {
        Sender &sn = senders_[i];
        if (sn.tls == nullptr)
            return;
        uint64_t target =
            std::min<uint64_t>(roundsOpen_, p_.rounds) * p_.bytesPerSender;
        while (sn.sent < target) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(kRecordSize, target - sn.sent));
            Bytes buf(n, 0x5a);
            size_t acc = sn.tls->send(buf);
            sn.sent += acc;
            if (acc < n)
                return;
        }
    }

    void
    accept(tcp::TcpConnection &c)
    {
        // Install the TLS socket (and rx offload context) at accept
        // time, i.e. on the SYN: rcvNxt is still the ISN so the NIC
        // FSM starts byte-synchronized with record 0. Deferring to
        // onConnected would install the context mid-record when the
        // handshake-completing segment carries data, forcing a resync
        // that cannot re-lock until a packet-aligned record boundary.
        auto r = std::make_unique<Receiver>();
        r->tls = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(kTlsSecret, false), srvTlsCfg_);
        if (p_.offload)
            r->tls->enableOffload(srv_.device());
        tls::TlsSocket *s = r->tls.get();
        s->setOnReadable([this, s] {
            while (s->readable())
                delivered_ += s->pop().data.size();
        });
        receivers_.push_back(std::move(r));
    }

    IncastParams p_;
    sim::Simulator sim_;
    net::Link link_;
    core::Node gen_;
    core::Node srv_;
    tls::TlsConfig srvTlsCfg_;
    tls::TlsConfig cliTlsCfg_;
    tls::TlsStats srvAgg_;
    std::vector<Sender> senders_;
    std::vector<std::unique_ptr<Receiver>> receivers_;
    uint32_t roundsOpen_ = 0;
    uint64_t delivered_ = 0;
};

PointResult
runPoint(sim::RunContext &ctx, const IncastParams &p)
{
    IncastWorld w(ctx, p);
    sim::Tick limit = 4 * sim::kSecond;
    while (w.sim().now() < limit && !w.done())
        w.sim().runFor(kPoll);

    PointResult r;
    r.completed = w.done();
    sim::Tick took = w.sim().now() > kStart ? w.sim().now() - kStart : 0;
    r.completionMs = sim::ticksToSeconds(took) * 1e3;
    if (took > 0)
        r.goodputGbps = static_cast<double>(w.delivered()) * 8.0 /
                        sim::ticksToSeconds(took) / 1e9;
    const tls::TlsStats &t = w.srvTls();
    uint64_t full = t.rxFullyOffloaded.value();
    uint64_t classified = full + t.rxPartiallyOffloaded.value() +
                          t.rxNotOffloaded.value();
    r.hitRate = classified > 0
                    ? static_cast<double>(full) /
                          static_cast<double>(classified)
                    : 0.0;
    r.resyncReq = t.rxResyncRequests.value();
    r.resyncConf = t.rxResyncConfirmed.value();
    const tcp::TcpStats &g = w.gen().stack().stats();
    r.fastRetx = g.fastRetransmits.value();
    r.rtoFires = g.rtoFires.value();
    r.cwndReductions = g.ecnCwndReductions.value();
    r.ecnMarked = w.link().stats(0).ecnMarked;
    emitRegistrySnapshot(ctx, "incast",
                         {{"cc", tcp::ccAlgoName(p.cc)},
                          {"fan_in", tagNum(p.fanIn)},
                          {"offload", p.offload ? "1" : "0"}});
    return r;
}

constexpr int kFanInsFull[] = {4, 8, 16, 32};
constexpr int kFanInsQuick[] = {4, 32};
constexpr tcp::CcAlgo kAlgos[] = {tcp::CcAlgo::Reno, tcp::CcAlgo::Cubic,
                                  tcp::CcAlgo::Dctcp};
constexpr int kMaxFanIns = static_cast<int>(std::size(kFanInsFull));
constexpr int kAlgoCount = static_cast<int>(std::size(kAlgos));

void
appendTrajectory(const PointResult (&res)[kAlgoCount][kMaxFanIns][2],
                 const int *fanIns, int fanInCount, bool quick)
{
    const char *path = std::getenv("ANIC_SIMSPEED_TRAJECTORY");
    if (path == nullptr || *path == '\0')
        return;
    std::FILE *f = std::fopen(path, "a");
    if (f == nullptr) {
        std::fprintf(stderr, "incast: cannot append to %s\n", path);
        return;
    }
    char date[32] = "unknown";
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    if (gmtime_r(&now, &tm) != nullptr)
        std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%SZ", &tm);
    const char *rev = std::getenv("ANIC_BENCH_REV");
    std::fprintf(f,
                 "{\"schema\":\"anic.incast.v1\",\"date\":\"%s\","
                 "\"rev\":\"%s\",\"quick\":%s,\"points\":{",
                 date, rev != nullptr ? rev : "unknown",
                 quick ? "true" : "false");
    bool first = true;
    for (int ai = 0; ai < kAlgoCount; ai++) {
        for (int fi = 0; fi < fanInCount; fi++) {
            const PointResult &r = res[ai][fi][1]; // offload points
            std::fprintf(f,
                         "%s\"%s/f%d\":{\"hit_rate\":%.4f,"
                         "\"resync_req\":%llu,\"resync_conf\":%llu,"
                         "\"completion_ms\":%.2f}",
                         first ? "" : ",", tcp::ccAlgoName(kAlgos[ai]),
                         fanIns[fi], r.hitRate,
                         static_cast<unsigned long long>(r.resyncReq),
                         static_cast<unsigned long long>(r.resyncConf),
                         r.completionMs);
            first = false;
        }
    }
    std::fprintf(f, "}}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    bool quick = opt.quick || util::Env::quick();
    const int *fanIns = quick ? kFanInsQuick : kFanInsFull;
    const int fanInCount =
        quick ? static_cast<int>(std::size(kFanInsQuick)) : kMaxFanIns;

    printHeader("incast: fan-in x congestion control x rx offload");
    std::printf("N senders -> 1 rx-offloaded receiver, synchronized "
                "burst rounds, lossy+reordering path\n\n");

    PointResult res[kAlgoCount][kMaxFanIns][2] = {};
    {
        Sweep sweep("incast", opt);
        for (int ai = 0; ai < kAlgoCount; ai++) {
            for (int fi = 0; fi < fanInCount; fi++) {
                for (int off = 0; off < 2; off++) {
                    IncastParams p;
                    p.fanIn = fanIns[fi];
                    p.cc = kAlgos[ai];
                    p.offload = off == 1;
                    if (quick) {
                        p.rounds = 2;
                        p.bytesPerSender = 32 << 10;
                    }
                    std::string label =
                        strprintf("%s/f%d/%s", tcp::ccAlgoName(p.cc),
                                  p.fanIn, p.offload ? "offload" : "sw");
                    sweep.add(label, [&res, ai, fi, off,
                                      p](sim::RunContext &ctx) {
                        PointResult r = runPoint(ctx, p);
                        res[ai][fi][off] = r;
                        JsonExtra tags = {
                            {"cc", tcp::ccAlgoName(p.cc)},
                            {"fan_in", tagNum(p.fanIn)},
                            {"offload", p.offload ? "1" : "0"}};
                        jsonRecord(ctx, "incast", "hit_rate", r.hitRate,
                                   tags);
                        jsonRecord(ctx, "incast", "completion_ms",
                                   r.completionMs, tags);
                        jsonRecord(ctx, "incast", "resync_req",
                                   static_cast<double>(r.resyncReq), tags);
                        jsonRecord(ctx, "incast", "fast_retx",
                                   static_cast<double>(r.fastRetx), tags);
                    });
                }
            }
        }
        sweep.drain();
    }

    std::printf("%-6s %4s %-8s %6s %7s %9s %7s %6s %7s %8s %9s\n", "cc",
                "fan", "mode", "done", "hit%", "resyncs", "fretx", "rto",
                "ce", "cwndcut", "burst ms");
    for (int ai = 0; ai < kAlgoCount; ai++) {
        for (int fi = 0; fi < fanInCount; fi++) {
            for (int off = 0; off < 2; off++) {
                const PointResult &r = res[ai][fi][off];
                std::printf(
                    "%-6s %4d %-8s %6s %6.1f%% %4llu/%-4llu %7llu %6llu "
                    "%7llu %8llu %9.2f\n",
                    tcp::ccAlgoName(kAlgos[ai]), fanIns[fi],
                    off == 1 ? "offload" : "sw", r.completed ? "yes" : "NO",
                    100.0 * r.hitRate,
                    static_cast<unsigned long long>(r.resyncConf),
                    static_cast<unsigned long long>(r.resyncReq),
                    static_cast<unsigned long long>(r.fastRetx),
                    static_cast<unsigned long long>(r.rtoFires),
                    static_cast<unsigned long long>(r.ecnMarked),
                    static_cast<unsigned long long>(r.cwndReductions),
                    r.completionMs);
            }
        }
    }
    std::printf("\npaper claim (§4.3): the rx offload is opportunistic — "
                "incast loss costs resyncs, never correctness\n");

    appendTrajectory(res, fanIns, fanInCount, quick);
    return 0;
}
