/**
 * @file
 * google-benchmark microbenchmarks of the crypto substrate (wall-
 * clock throughput of this library's software implementations). Not
 * a paper artifact; used to confirm the simulator's data path is fast
 * enough to push hundreds of megabytes through the benches.
 *
 * Every kernel variant compiled into the binary is registered (scalar
 * always; hw when the CPU supports AES-NI/PCLMUL/SSE4.2), and a
 * summary at the end reports hw-over-scalar speedups plus JSON
 * records, so the dispatch layer's win is visible in one run.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hh"
#include "crypto/aes.hh"
#include "crypto/cpu.hh"
#include "crypto/crc32c.hh"
#include "crypto/gcm.hh"
#include "crypto/kernels.hh"
#include "crypto/sha1.hh"
#include "util/bytes.hh"

namespace {

using namespace anic;
using namespace anic::crypto;

std::vector<CryptoImpl>
impls()
{
    std::vector<CryptoImpl> v{CryptoImpl::Scalar};
    if (hwCryptoSupported())
        v.push_back(CryptoImpl::Hw);
    return v;
}

uint32_t
crcCompute(CryptoImpl impl, ByteView data)
{
    uint32_t s = 0xffffffffu;
    if (impl == CryptoImpl::Hw)
        s = detail::hwOpsIfSupported()->crc32cUpdate(s, data.data(),
                                                     data.size());
    else
        s = detail::crc32cScalarUpdate(s, data.data(), data.size());
    return ~s;
}

void
BM_Crc32c(benchmark::State &state, CryptoImpl impl)
{
    Bytes data(static_cast<size_t>(state.range(0)));
    fillDeterministic(data, 1, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crcCompute(impl, data));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}

void
BM_AesGcmSeal(benchmark::State &state, CryptoImpl impl)
{
    Bytes key(16, 0x11);
    Bytes iv(12, 0x22);
    Bytes pt(static_cast<size_t>(state.range(0)));
    fillDeterministic(pt, 2, 0);
    AesGcm gcm(key, impl);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gcm.seal(iv, {}, pt));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}

void
BM_AesGcmStreamDecrypt(benchmark::State &state, CryptoImpl impl)
{
    Bytes key(16, 0x11);
    Bytes iv(12, 0x22);
    Bytes pt(16384);
    fillDeterministic(pt, 3, 0);
    AesGcm gcm(key, impl);
    Bytes sealed = gcm.seal(iv, {}, pt);
    Bytes out(pt.size());
    for (auto _ : state) {
        gcm.start(iv, {});
        // Packet-sized chunks, like the NIC engine sees them.
        size_t off = 0;
        while (off < pt.size()) {
            size_t n = std::min<size_t>(1460, pt.size() - off);
            gcm.decryptUpdate(ByteView(sealed).subspan(off, n),
                              ByteSpan(out).subspan(off, n));
            off += n;
        }
        benchmark::DoNotOptimize(
            gcm.checkTag(ByteView(sealed).subspan(pt.size())));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(pt.size()));
}

void
BM_AesCtrAtOffset(benchmark::State &state, CryptoImpl impl)
{
    Bytes key(16, 0x11);
    Bytes iv(12, 0x22);
    Aes128 aes(key);
    Bytes data(16384);
    for (auto _ : state) {
        aesGcmCtrAtOffset(aes, iv, 4096, data, impl);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16384);
}

void
BM_Sha1(benchmark::State &state)
{
    Bytes data(16384);
    fillDeterministic(data, 4, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Sha1::compute(data));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16384);
}

void
registerAll()
{
    for (CryptoImpl impl : impls()) {
        const char *nm = cryptoImplName(impl);
        char name[64];
        std::snprintf(name, sizeof name, "BM_Crc32c/%s", nm);
        benchmark::RegisterBenchmark(name, BM_Crc32c, impl)
            ->Arg(1460)
            ->Arg(16384)
            ->Arg(262144);
        std::snprintf(name, sizeof name, "BM_AesGcmSeal/%s", nm);
        benchmark::RegisterBenchmark(name, BM_AesGcmSeal, impl)
            ->Arg(1460)
            ->Arg(16384);
        std::snprintf(name, sizeof name, "BM_AesGcmStreamDecrypt/%s", nm);
        benchmark::RegisterBenchmark(name, BM_AesGcmStreamDecrypt, impl);
        std::snprintf(name, sizeof name, "BM_AesCtrAtOffset/%s", nm);
        benchmark::RegisterBenchmark(name, BM_AesCtrAtOffset, impl);
    }
    benchmark::RegisterBenchmark("BM_Sha1", BM_Sha1);
}

// --------------------------------------------------------- summary

/** Runs @p work repeatedly for ~0.25 s; returns bytes per second. */
template <typename Fn>
double
throughput(size_t bytesPerCall, Fn work)
{
    using clock = std::chrono::steady_clock;
    // Warm up (tables, branch predictors).
    work();
    uint64_t calls = 0;
    auto t0 = clock::now();
    double elapsed = 0;
    do {
        for (int i = 0; i < 8; i++)
            work();
        calls += 8;
        elapsed = std::chrono::duration<double>(clock::now() - t0).count();
    } while (elapsed < 0.25);
    return static_cast<double>(calls) *
           static_cast<double>(bytesPerCall) / elapsed;
}

void
speedupSummary()
{
    if (!hwCryptoSupported()) {
        std::printf("\nhw kernels unavailable (%s); scalar only\n",
                    hwCryptoCompiled() ? "CPU lacks AES-NI/PCLMUL/SSE4.2"
                                       : "not compiled in");
        return;
    }

    std::printf("\n-- hw vs scalar speedup --\n");

    auto gcmSeal = [](CryptoImpl impl, size_t len) {
        Bytes key(16, 0x11);
        Bytes iv(12, 0x22);
        Bytes pt(len);
        fillDeterministic(pt, 2, 0);
        AesGcm gcm(key, impl);
        Bytes out(len + AesGcm::kTagSize);
        return throughput(len, [&gcm, &iv, &pt, &out, len] {
            gcm.start(iv, {});
            gcm.encryptUpdate(pt, ByteSpan(out.data(), len));
            gcm.finishTag(ByteSpan(out.data() + len, AesGcm::kTagSize));
        });
    };
    auto crc = [](CryptoImpl impl, size_t len) {
        Bytes data(len);
        fillDeterministic(data, 1, 0);
        return throughput(len, [impl, &data] {
            benchmark::DoNotOptimize(crcCompute(impl, data));
        });
    };

    struct Row
    {
        const char *name;
        const char *tag;
        size_t len;
        bool gcm;
    };
    static const Row rows[] = {
        {"aes-gcm seal 1460B", "gcm1460", 1460, true},
        {"aes-gcm seal 16KiB", "gcm16k", 16384, true},
        {"crc32c 1460B", "crc1460", 1460, false},
        {"crc32c 256KiB", "crc256k", 262144, false},
    };
    for (const Row &r : rows) {
        double scalar = r.gcm ? gcmSeal(CryptoImpl::Scalar, r.len)
                              : crc(CryptoImpl::Scalar, r.len);
        double hw =
            r.gcm ? gcmSeal(CryptoImpl::Hw, r.len) : crc(CryptoImpl::Hw, r.len);
        double speedup = scalar > 0 ? hw / scalar : 0;
        std::printf("%-20s scalar %8.0f MB/s   hw %8.0f MB/s   %5.1fx\n",
                    r.name, scalar / 1e6, hw / 1e6, speedup);
        anic::bench::jsonRecord("crypto_micro",
                                (std::string(r.tag) + "_speedup").c_str(),
                                speedup);
        anic::bench::jsonRecord("crypto_micro",
                                (std::string(r.tag) + "_hw_mbps").c_str(),
                                hw / 1e6);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    registerAll();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    speedupSummary();
    anic::bench::emitRegistrySnapshot("crypto_micro");
    return 0;
}
