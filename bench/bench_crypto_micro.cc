/**
 * @file
 * google-benchmark microbenchmarks of the crypto substrate (wall-
 * clock throughput of this library's software implementations). Not
 * a paper artifact; used to confirm the simulator's data path is fast
 * enough to push hundreds of megabytes through the benches.
 */

#include <benchmark/benchmark.h>

#include "crypto/aes.hh"
#include "crypto/crc32c.hh"
#include "crypto/gcm.hh"
#include "crypto/sha1.hh"
#include "util/bytes.hh"

namespace {

using namespace anic;
using namespace anic::crypto;

void
BM_Crc32c(benchmark::State &state)
{
    Bytes data(static_cast<size_t>(state.range(0)));
    fillDeterministic(data, 1, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Crc32c::compute(data));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(1460)->Arg(16384)->Arg(262144);

void
BM_AesGcmSeal(benchmark::State &state)
{
    Bytes key(16, 0x11);
    Bytes iv(12, 0x22);
    Bytes pt(static_cast<size_t>(state.range(0)));
    fillDeterministic(pt, 2, 0);
    AesGcm gcm(key);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gcm.seal(iv, {}, pt));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(1460)->Arg(16384);

void
BM_AesGcmStreamDecrypt(benchmark::State &state)
{
    Bytes key(16, 0x11);
    Bytes iv(12, 0x22);
    Bytes pt(16384);
    fillDeterministic(pt, 3, 0);
    AesGcm gcm(key);
    Bytes sealed = gcm.seal(iv, {}, pt);
    Bytes out(pt.size());
    for (auto _ : state) {
        gcm.start(iv, {});
        // Packet-sized chunks, like the NIC engine sees them.
        size_t off = 0;
        while (off < pt.size()) {
            size_t n = std::min<size_t>(1460, pt.size() - off);
            gcm.decryptUpdate(ByteView(sealed).subspan(off, n),
                              ByteSpan(out).subspan(off, n));
            off += n;
        }
        benchmark::DoNotOptimize(
            gcm.checkTag(ByteView(sealed).subspan(pt.size())));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(pt.size()));
}
BENCHMARK(BM_AesGcmStreamDecrypt);

void
BM_AesCtrAtOffset(benchmark::State &state)
{
    Bytes key(16, 0x11);
    Bytes iv(12, 0x22);
    Aes128 aes(key);
    Bytes data(16384);
    for (auto _ : state) {
        aesGcmCtrAtOffset(aes, iv, 4096, data);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16384);
}
BENCHMARK(BM_AesCtrAtOffset);

void
BM_Sha1(benchmark::State &state)
{
    Bytes data(16384);
    fillDeterministic(data, 4, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Sha1::compute(data));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16384);
}
BENCHMARK(BM_Sha1);

} // namespace

BENCHMARK_MAIN();
