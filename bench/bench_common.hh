/**
 * @file
 * Shared benchmark harness: the nginx scenario engine (used by
 * Figures 12-14, 19 and Table 4) built on ExperimentBuilder, plus
 * table formatting. Each bench binary prints the rows/series of the
 * paper artifact it reproduces.
 *
 * Every bench accepts the shared CLI (see bench_cli.hh): --jobs N
 * shards sweep points across worker threads with byte-identical
 * output, --quick / ANIC_QUICK shrinks measurement windows.
 */

#ifndef ANIC_BENCH_BENCH_COMMON_HH
#define ANIC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "app/http.hh"
#include "app/iperf.hh"
#include "app/kv.hh"
#include "bench_cli.hh"
#include "experiment.hh"
#include "util/env.hh"

namespace anic::bench {

inline void
printHeader(const char *title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title);
    std::printf("================================================================\n");
}

struct NginxParams
{
    int serverCores = 1;
    int generatorCores = 12;
    int connections = 1024;
    uint64_t fileSize = 256 << 10;
    int fileCount = 64;
    bool c1 = false; ///< remote storage (drive-bound) vs page cache
    HttpVariant variant = HttpVariant::Https;
    StorageVariant storage;
    sim::Tick warmup = 15 * sim::kMillisecond;
    sim::Tick window = 30 * sim::kMillisecond;
    size_t serverSndBuf = 1 << 20;
    size_t clientRcvBuf = 1 << 20;
    net::Link::Config link;

    /** When non-empty, runNginx emits a registry snapshot tagged with
     *  @p scenario at the end of the measurement window (it must run
     *  while the world is alive — scopes unlink on destruction). */
    std::string bench;
    ScenarioTags scenario;
};

struct NginxResult
{
    double gbps = 0;          ///< response body goodput
    double busyCores = 0;     ///< average busy server cores
    double requestsPerSec = 0;
    double latencyUs = 0;     ///< mean request latency
    double ctxMissPerPkt = 0; ///< server NIC context misses / packet
    uint64_t corruptions = 0;
    uint64_t errors = 0;
};

/** Runs one nginx data point (the Figure 12-14 engine) inside @p ctx:
 *  stats/trace isolation, window scaling, and output all flow through
 *  the run context, so points can run on JobRunner workers. */
NginxResult runNginx(sim::RunContext &ctx, const NginxParams &p);

} // namespace anic::bench

#endif // ANIC_BENCH_BENCH_COMMON_HH
