/**
 * @file
 * Shared benchmark harness: world construction, the nginx scenario
 * (used by Figures 12-14, 19 and Table 4), measurement windows, and
 * table formatting. Each bench binary prints the rows/series of the
 * paper artifact it reproduces.
 *
 * Set ANIC_QUICK=1 to shrink measurement windows (CI smoke runs).
 */

#ifndef ANIC_BENCH_BENCH_COMMON_HH
#define ANIC_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "app/http.hh"
#include "app/iperf.hh"
#include "app/kv.hh"
#include "app/macro_world.hh"
#include "bench_json.hh"

namespace anic::bench {

inline bool
quickMode()
{
    return std::getenv("ANIC_QUICK") != nullptr;
}

inline sim::Tick
measureWindow(sim::Tick full)
{
    return quickMode() ? full / 4 : full;
}

inline void
printHeader(const char *title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title);
    std::printf("================================================================\n");
}

/** nginx transport/offload variants (Figure 13 legend). */
enum class HttpVariant
{
    Http,      ///< no encryption (upper bound)
    Https,     ///< kTLS software crypto (baseline)
    Offload,   ///< TLS NIC offload, sendfile still copies
    OffloadZc, ///< TLS NIC offload + zero-copy sendfile
};

inline const char *
variantName(HttpVariant v)
{
    switch (v) {
      case HttpVariant::Http:
        return "http";
      case HttpVariant::Https:
        return "https";
      case HttpVariant::Offload:
        return "offload";
      case HttpVariant::OffloadZc:
        return "offload+zc";
    }
    return "?";
}

/** Storage-path offload selection for C1 scenarios. */
struct StorageVariant
{
    bool offload = false;    ///< NVMe-TCP CRC + copy offload
    bool tls = false;        ///< NVMe-TLS transport
    bool tlsOffload = false; ///< offload the storage TLS too
};

struct NginxParams
{
    int serverCores = 1;
    int generatorCores = 12;
    int connections = 1024;
    uint64_t fileSize = 256 << 10;
    int fileCount = 64;
    bool c1 = false; ///< remote storage (drive-bound) vs page cache
    HttpVariant variant = HttpVariant::Https;
    StorageVariant storage;
    sim::Tick warmup = 15 * sim::kMillisecond;
    sim::Tick window = 30 * sim::kMillisecond;
    size_t serverSndBuf = 1 << 20;
    size_t clientRcvBuf = 1 << 20;
    net::Link::Config link;

    /** When non-empty, runNginx emits a registry snapshot tagged with
     *  @p scenario at the end of the measurement window (it must run
     *  while the world is alive — scopes unlink on destruction). */
    std::string bench;
    ScenarioTags scenario;
};

struct NginxResult
{
    double gbps = 0;          ///< response body goodput
    double busyCores = 0;     ///< average busy server cores
    double requestsPerSec = 0;
    double latencyUs = 0;     ///< mean request latency
    double ctxMissPerPkt = 0; ///< server NIC context misses / packet
    uint64_t corruptions = 0;
    uint64_t errors = 0;
};

/** Runs one nginx data point (the Figure 12-14 engine). */
NginxResult runNginx(const NginxParams &p);

} // namespace anic::bench

#endif // ANIC_BENCH_BENCH_COMMON_HH
