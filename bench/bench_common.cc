#include "bench_common.hh"

namespace anic::bench {

NginxResult
runNginx(const NginxParams &p)
{
    app::MacroWorld::Config cfg;
    cfg.serverCores = p.serverCores;
    cfg.generatorCores = p.generatorCores;
    cfg.link = p.link;
    cfg.serverTcp.sndBufSize = p.serverSndBuf;
    cfg.generatorTcp.rcvBufSize = p.clientRcvBuf;
    // HTTP clients only ever send small requests, but the send ring
    // allocates its full capacity on first use — at 128K connections
    // the 1 MB default would be ~128 GB.
    cfg.generatorTcp.sndBufSize = 64 << 10;
    cfg.remoteStorage = p.c1;
    if (p.c1) {
        cfg.storage.pageCacheBytes = 0; // C1: every request misses
        cfg.storage.offloadEnabled = p.storage.offload;
        cfg.storage.offload.crcRx = p.storage.offload;
        cfg.storage.offload.copyRx = p.storage.offload;
        cfg.storage.tlsTransport = p.storage.tls;
        cfg.storage.tlsCfg.rxOffload = p.storage.tlsOffload;
    }

    app::MacroWorld w(cfg);
    std::vector<uint32_t> ids = w.makeFiles(p.fileCount, p.fileSize);
    if (!p.c1)
        w.storage->prewarm();

    app::HttpServerConfig scfg;
    app::HttpClientConfig ccfg;
    switch (p.variant) {
      case HttpVariant::Http:
        break;
      case HttpVariant::Https:
        scfg.tlsEnabled = true;
        ccfg.tlsEnabled = true;
        break;
      case HttpVariant::Offload:
        scfg.tlsEnabled = true;
        scfg.tlsCfg.txOffload = true;
        scfg.tlsCfg.rxOffload = true;
        ccfg.tlsEnabled = true;
        break;
      case HttpVariant::OffloadZc:
        scfg.tlsEnabled = true;
        scfg.tlsCfg.txOffload = true;
        scfg.tlsCfg.rxOffload = true;
        scfg.tlsCfg.zerocopySendfile = true;
        ccfg.tlsEnabled = true;
        break;
    }
    ccfg.connections = p.connections;
    ccfg.fileIds = ids;
    ccfg.verifyContent = false; // benches measure, tests verify

    app::HttpServer server(w.server, 443, *w.storage, scfg);
    app::HttpClient client(w.generator, app::MacroWorld::kGenIp,
                           app::MacroWorld::kSrvIp, 443, w.files, ccfg);
    client.start();

    // Ramp + warm-up: wait for (nearly) all connections before
    // opening the measurement window.
    sim::Tick ramp = static_cast<sim::Tick>(p.connections) *
                     ccfg.staggerPerConn;
    w.sim.runFor(p.warmup + ramp);
    for (int tries = 0;
         client.connected() < p.connections * 95 / 100 && tries < 40;
         tries++) {
        w.sim.runFor(5 * sim::kMillisecond);
    }
    sim::Tick window = measureWindow(p.window);
    std::vector<sim::Tick> busy = w.server.busySnapshot();
    nic::NicStats nic0 = w.server.nicDev().stats();
    client.measureStart();
    w.sim.runFor(window);
    client.measureStop();
    nic::NicStats nic1 = w.server.nicDev().stats();

    NginxResult r;
    r.gbps = client.bodyMeter().gbps();
    r.busyCores = w.server.busyCores(busy, window);
    r.requestsPerSec = static_cast<double>(client.windowResponses()) /
                       sim::ticksToSeconds(window);
    r.latencyUs = client.stats().latencyUs.empty()
                      ? 0.0
                      : client.stats().latencyUs.mean();
    uint64_t pkts = (nic1.pktsTx - nic0.pktsTx) + (nic1.pktsRx - nic0.pktsRx);
    r.ctxMissPerPkt = pkts > 0 ? static_cast<double>(nic1.ctxCacheMisses -
                                                     nic0.ctxCacheMisses) /
                                     static_cast<double>(pkts)
                               : 0.0;
    r.corruptions = client.stats().corruptions;
    r.errors = server.stats().errors;

    if (!p.bench.empty()) {
        ScenarioTags tags = p.scenario;
        tags.emplace_back("variant", variantName(p.variant));
        emitRegistrySnapshot(p.bench, tags);
    }
    return r;
}

} // namespace anic::bench
