#include "bench_common.hh"

namespace anic::bench {

NginxResult
runNginx(sim::RunContext &ctx, const NginxParams &p)
{
    ExperimentBuilder b;
    b.run(ctx)
        .serverCores(p.serverCores)
        .generatorCores(p.generatorCores)
        .link(p.link)
        .serverSndBuf(p.serverSndBuf)
        .generatorRcvBuf(p.clientRcvBuf)
        .httpVariant(p.variant)
        .files(p.fileCount, p.fileSize)
        .connections(p.connections);
    if (p.c1)
        b.remoteStorage(p.storage);
    else
        b.pageCache();
    auto ex = b.build();

    app::HttpClientConfig ccfg = ex->httpClientCfg();
    ccfg.verifyContent = false; // benches measure, tests verify

    app::MacroWorld &w = ex->world();
    app::HttpServer server(w.server, 443, *w.storage, ex->httpServerCfg());
    app::HttpClient client(w.generator, app::MacroWorld::kGenIp,
                           app::MacroWorld::kSrvIp, 443, w.files, ccfg);
    client.start();

    // Ramp + warm-up: wait for (nearly) all connections before
    // opening the measurement window.
    sim::Tick ramp = static_cast<sim::Tick>(p.connections) *
                     ccfg.staggerPerConn;
    ex->warm(p.warmup + ramp);
    for (int tries = 0;
         client.connected() < p.connections * 95 / 100 && tries < 40;
         tries++) {
        ex->warm(5 * sim::kMillisecond);
    }
    sim::Tick window = ex->scaledWindow(p.window);
    nic::NicStats nic0 = w.server.nicDev().stats();
    double busyCores = ex->measure(
        window, [&] { client.measureStart(); },
        [&] { client.measureStop(); });
    nic::NicStats nic1 = w.server.nicDev().stats();

    NginxResult r;
    r.gbps = client.bodyMeter().gbps();
    r.busyCores = busyCores;
    r.requestsPerSec = static_cast<double>(client.windowResponses()) /
                       sim::ticksToSeconds(window);
    r.latencyUs = client.stats().latencyUs.empty()
                      ? 0.0
                      : client.stats().latencyUs.mean();
    uint64_t pkts = (nic1.pktsTx - nic0.pktsTx) + (nic1.pktsRx - nic0.pktsRx);
    r.ctxMissPerPkt = pkts > 0 ? static_cast<double>(nic1.ctxCacheMisses -
                                                     nic0.ctxCacheMisses) /
                                     static_cast<double>(pkts)
                               : 0.0;
    r.corruptions = client.stats().corruptions;
    r.errors = server.stats().errors;

    if (!p.bench.empty()) {
        ScenarioTags tags = p.scenario;
        tags.emplace_back("variant", variantName(p.variant));
        emitRegistrySnapshot(ctx, p.bench, tags);
    }
    return r;
}

} // namespace anic::bench
