/**
 * @file
 * Table 1: encryption bandwidth (MB/s) of on-CPU AES-NI vs an off-CPU
 * QAT-class accelerator, 16 KiB blocks, 1 vs 128 client threads on a
 * single 2.4 GHz core. Paper: CBC-HMAC-SHA1 — QAT(1) 249, QAT(128)
 * 3144, AES-NI 695; GCM — QAT(1) 249, QAT(128) 3109, AES-NI 3150.
 */

#include "accel/qat.hh"
#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

double
qat(int threads)
{
    sim::Simulator sim;
    host::CycleModel model;
    model.cpuGhz = 2.4;
    host::Core core(sim, model, 0);
    accel::OffCpuAccelerator dev(sim, {});
    return accel::runAcceleratedSpeedTest(sim, core, dev, threads, 16384,
                                          measureWindow(
                                              100 * sim::kMillisecond));
}

double
aesni(double cyclesPerByte)
{
    sim::Simulator sim;
    host::CycleModel model;
    model.cpuGhz = 2.4;
    host::Core core(sim, model, 0);
    return accel::runOnCpuSpeedTest(sim, core, cyclesPerByte, 16384,
                                    measureWindow(100 * sim::kMillisecond));
}

} // namespace

int
main()
{
    printHeader("Table 1: AES-NI (on-CPU) vs QAT (off-CPU) encryption "
                "bandwidth, MB/s, 16KiB blocks, 1 core @2.4GHz");
    double q1 = qat(1);
    double q128 = qat(128);
    double cbc = aesni(accel::CipherCosts::kCbcHmacSha1PerByte);
    double gcm = aesni(accel::CipherCosts::kGcmPerByte);
    std::printf("%-28s %10s %10s %10s\n", "cipher", "QAT 1", "QAT 128",
                "AES-NI 1");
    std::printf("%-28s %10.0f %10.0f %10.0f\n", "AES-128-CBC-HMAC-SHA1", q1,
                q128, cbc);
    std::printf("%-28s %10.0f %10.0f %10.0f\n", "AES-128-GCM", q1, q128, gcm);
    for (const char *cipher : {"cbc-hmac-sha1", "gcm"}) {
        jsonRecord("tab01", "qat1_mbps", q1, {{"cipher", cipher}});
        jsonRecord("tab01", "qat128_mbps", q128, {{"cipher", cipher}});
    }
    jsonRecord("tab01", "aesni_mbps", cbc, {{"cipher", "cbc-hmac-sha1"}});
    jsonRecord("tab01", "aesni_mbps", gcm, {{"cipher", "gcm"}});
    emitRegistrySnapshot("tab01");
    std::printf("\npaper: 249 / 3144 / 695 and 249 / 3109 / 3150\n");
    return 0;
}
