/**
 * @file
 * Table 1: encryption bandwidth (MB/s) of on-CPU AES-NI vs an off-CPU
 * QAT-class accelerator, 16 KiB blocks, 1 vs 128 client threads on a
 * single 2.4 GHz core. Paper: CBC-HMAC-SHA1 — QAT(1) 249, QAT(128)
 * 3144, AES-NI 695; GCM — QAT(1) 249, QAT(128) 3109, AES-NI 3150.
 */

#include "accel/qat.hh"
#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

double
qat(sim::RunContext &ctx, int threads)
{
    sim::Simulator sim;
    host::CycleModel model;
    model.cpuGhz = 2.4;
    host::Core core(sim, model, 0,
                    sim::StatsScope(ctx.registry(), "core0"));
    accel::OffCpuAccelerator dev(sim, {});
    return accel::runAcceleratedSpeedTest(
        sim, core, dev, threads, 16384,
        ctx.scaleWindow(100 * sim::kMillisecond));
}

double
aesni(sim::RunContext &ctx, double cyclesPerByte)
{
    sim::Simulator sim;
    host::CycleModel model;
    model.cpuGhz = 2.4;
    host::Core core(sim, model, 0,
                    sim::StatsScope(ctx.registry(), "core0"));
    return accel::runOnCpuSpeedTest(
        sim, core, cyclesPerByte, 16384,
        ctx.scaleWindow(100 * sim::kMillisecond));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Table 1: AES-NI (on-CPU) vs QAT (off-CPU) encryption "
                "bandwidth, MB/s, 16KiB blocks, 1 core @2.4GHz");

    double mbps[4] = {}; // q1, q128, cbc, gcm
    {
        Sweep sweep("tab01", opt);
        sweep.add("qat1", [&mbps](sim::RunContext &ctx) {
            mbps[0] = qat(ctx, 1);
        });
        sweep.add("qat128", [&mbps](sim::RunContext &ctx) {
            mbps[1] = qat(ctx, 128);
        });
        sweep.add("aesni-cbc", [&mbps](sim::RunContext &ctx) {
            mbps[2] = aesni(ctx, accel::CipherCosts::kCbcHmacSha1PerByte);
        });
        sweep.add("aesni-gcm", [&mbps](sim::RunContext &ctx) {
            mbps[3] = aesni(ctx, accel::CipherCosts::kGcmPerByte);
            emitRegistrySnapshot(ctx, "tab01");
        });
        sweep.drain();
    }
    double q1 = mbps[0], q128 = mbps[1], cbc = mbps[2], gcm = mbps[3];

    std::printf("%-28s %10s %10s %10s\n", "cipher", "QAT 1", "QAT 128",
                "AES-NI 1");
    std::printf("%-28s %10.0f %10.0f %10.0f\n", "AES-128-CBC-HMAC-SHA1", q1,
                q128, cbc);
    std::printf("%-28s %10.0f %10.0f %10.0f\n", "AES-128-GCM", q1, q128, gcm);
    // Aggregate records span all sweep points, so they are emitted
    // from the main thread after drain (honoring --json).
    auto record = [&](const char *metric, double v, const char *cipher) {
        detail::writeJsonLine(detail::recordLine("tab01", metric, v,
                                                 {{"cipher", cipher}}),
                              opt.jsonPath);
    };
    for (const char *cipher : {"cbc-hmac-sha1", "gcm"}) {
        record("qat1_mbps", q1, cipher);
        record("qat128_mbps", q128, cipher);
    }
    record("aesni_mbps", cbc, "cbc-hmac-sha1");
    record("aesni_mbps", gcm, "gcm");
    std::printf("\npaper: 249 / 3144 / 695 and 249 / 3109 / 3150\n");
    return 0;
}
