/**
 * @file
 * Figure 19: scalability with connection count far beyond the NIC's
 * flow-context cache (4 MiB / 208 B ~ 20K flows): nginx in C2 with 8
 * server cores, 256 KiB files, 128..128K persistent connections,
 * https / offload / offload+zc / http. Paper: no performance cliff —
 * packet batching means only the first packet of a batch pays the
 * context-fetch cost; offload+zc stays within 10% of http and
 * 53-94% over https.
 *
 * Note: to keep 128K simulated connections within laptop memory the
 * per-connection socket buffers are smaller than the defaults (the
 * paper's server has 128 GB of RAM).
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    // --cores/ANIC_CORES sets the server core count (and, via the
    // node's auto queue config, its NIC TX/RX queue pair count): the
    // multi-core contention axis the executor TSan gate and the
    // perf-smoke scaling point sweep.
    const int serverCores = opt.cores > 0 ? opt.cores : 8;
    printHeader("Figure 19: connection scalability vs NIC context cache "
                "(20K flows)");
    const HttpVariant variants[] = {HttpVariant::Https, HttpVariant::Offload,
                                    HttpVariant::OffloadZc,
                                    HttpVariant::Http};
    std::vector<int> counts = opt.quick
                                  ? std::vector<int>{128, 2048, 16384}
                                  : std::vector<int>{128, 512, 2048, 8192,
                                                     32768, 131072};

    struct Row
    {
        double gbps[4] = {0, 0, 0, 0};
        double busyZc = 0;
        double missRate = 0;
    };
    std::vector<Row> rows(counts.size());
    {
        Sweep sweep("fig19", opt);
        for (size_t ci = 0; ci < counts.size(); ci++) {
            for (int i = 0; i < 4; i++) {
                int conns = counts[ci];
                std::string label = strprintf("conns=%d/%s", conns,
                                              variantName(variants[i]));
                sweep.add(label, [&rows, &variants, ci, i, conns,
                                  serverCores](sim::RunContext &ctx) {
                    NginxParams p;
                    p.serverCores = serverCores;
                    p.generatorCores = 16;
                    p.connections = conns;
                    p.fileSize = 256 << 10;
                    p.fileCount = 32;
                    p.c1 = false;
                    p.variant = variants[i];
                    // Small per-connection buffers so 128K connections
                    // fit in memory; aggregate throughput is
                    // unaffected.
                    p.serverSndBuf = 64 << 10;
                    p.clientRcvBuf = 64 << 10;
                    p.warmup = 15 * sim::kMillisecond;
                    p.window = 20 * sim::kMillisecond;
                    p.bench = "fig19";
                    p.scenario = {{"connections", tagNum(conns)},
                                  {"cores", tagNum(serverCores)}};
                    NginxResult r = runNginx(ctx, p);
                    rows[ci].gbps[i] = r.gbps;
                    if (variants[i] == HttpVariant::OffloadZc) {
                        rows[ci].busyZc = r.busyCores;
                        rows[ci].missRate = r.ctxMissPerPkt;
                    }
                });
            }
        }
        sweep.drain();
    }

    std::printf("%-8s", "conns");
    for (HttpVariant v : variants)
        std::printf(" %11s", variantName(v));
    std::printf(" %9s %10s %12s\n", "zc/https", "busy(zc)", "ctx miss/pkt");
    for (size_t ci = 0; ci < counts.size(); ci++) {
        const Row &row = rows[ci];
        std::printf("%-8d", counts[ci]);
        for (double g : row.gbps)
            std::printf(" %11.2f", g);
        std::printf(" %8.0f%% %10.2f %12.4f\n",
                    100.0 * (row.gbps[2] / row.gbps[0] - 1.0), row.busyZc,
                    row.missRate);
    }
    std::printf("\npaper: offload+zc within 10%% of http at every count; "
                "53-94%% over https; no cliff past 20K flows\n");
    return 0;
}
