/**
 * @file
 * Table 4: average latency (usec) of a single synchronous https GET
 * (one connection) while cumulatively enabling the offloads:
 * base -> +TLS -> +copy -> +CRC. C1 storage path (remote drive).
 * Paper: relative latency falls to 0.71x at 256 KiB; bigger requests
 * benefit more, and TLS contributes most of the win.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

double
latency(sim::RunContext &ctx, uint64_t size, int step)
{
    NginxParams p;
    p.serverCores = 1;
    p.generatorCores = 4;
    p.connections = 1;
    p.fileSize = size;
    p.fileCount = 8;
    p.c1 = true;
    p.warmup = 10 * sim::kMillisecond;
    p.window = 40 * sim::kMillisecond;
    // Small socket buffer so the response is paced by acknowledgments
    // across several work items; with one huge buffer the simulator's
    // execute-then-charge core model would hide CPU time from the
    // single-request latency path.
    p.serverSndBuf = 64 << 10;

    // step 0: base (all software)
    // step 1: +TLS offload (client-facing crypto + zc sendfile)
    // step 2: +copy offload (NVMe-TCP placement)
    // step 3: +CRC offload (NVMe-TCP data digest)
    p.variant = step >= 1 ? HttpVariant::OffloadZc : HttpVariant::Https;
    p.storage.offload = step >= 2;
    // (The harness enables copy+crc together at step>=2; step 3 adds
    // nothing separate here because crc rides the same flag — shown
    // as the same column refinement below.)
    p.bench = "tab04";
    p.scenario = {{"file_kib", tagNum(static_cast<double>(size >> 10))},
                  {"step", tagNum(step)}};
    NginxResult r = runNginx(ctx, p);
    return r.latencyUs;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Table 4: single synchronous GET latency [usec], "
                "cumulative offloads");

    const uint64_t kibs[] = {4, 16, 64, 256};
    double us[4][3] = {};
    {
        Sweep sweep("tab04", opt);
        for (int ki = 0; ki < 4; ki++) {
            for (int step = 0; step < 3; step++) {
                uint64_t kib = kibs[ki];
                std::string label =
                    strprintf("kib=%llu/step=%d",
                              static_cast<unsigned long long>(kib), step);
                sweep.add(label,
                          [&us, ki, step, kib](sim::RunContext &ctx) {
                              us[ki][step] = latency(ctx, kib << 10, step);
                          });
            }
        }
        sweep.drain();
    }

    std::printf("%-10s %10s %12s %14s %12s\n", "size", "base", "+TLS",
                "+copy+CRC", "relative");
    for (int ki = 0; ki < 4; ki++) {
        double base = us[ki][0], tls = us[ki][1], all = us[ki][2];
        std::printf("%-9lluK %10.0f %12.0f %14.0f %11.2fx\n",
                    static_cast<unsigned long long>(kibs[ki]), base, tls,
                    all, base > 0 ? all / base : 0);
    }
    std::printf("\npaper: 4K 0.98x, 16K 0.90x, 64K 0.78x, 256K 0.71x; "
                "TLS gives most of the reduction\n");
    return 0;
}
