/**
 * @file
 * Ablation: value of the hardware-driven resynchronization machinery
 * (DESIGN.md §5). Compares, for the rx TLS offload under loss and
 * reordering:
 *   (a) full design — speculative search + tracking + confirmation,
 *   (b) no mid-record resume — offload only re-engages when a record
 *       happens to start exactly at a packet boundary (what a naive
 *       "wait for alignment" design gets),
 * by reporting the fully/partially/not-offloaded record mix.
 *
 * There is no NIC knob for (b); it is emulated by a record size whose
 * wire length is a multiple of the MSS (aligned records make
 * mid-record resume irrelevant) versus the paper's default 16 KiB
 * records (unaligned: every resume is mid-record). The difference in
 * fully-offloaded share under identical loss shows how much of the
 * recovery the mid-message machinery provides.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Mix
{
    double fullPct = 0, partPct = 0, nonePct = 0, gbps = 0;
};

Mix
run(sim::RunContext &ctx, double loss, double reorder, size_t recordSize)
{
    net::Link::Config lc;
    lc.dir[0].lossRate = loss;
    lc.dir[0].reorderRate = reorder;
    lc.seed = 91;
    auto ex = ExperimentBuilder()
                  .run(ctx)
                  .serverCores(2)
                  .generatorCores(8)
                  .pageCache()
                  .link(lc)
                  .build();
    app::MacroWorld &w = ex->world();

    app::IperfConfig icfg;
    icfg.streams = 32;
    icfg.serverTls.rxOffload = true;
    icfg.clientTls.recordSize = recordSize;
    icfg.serverTls.recordSize = recordSize;
    app::IperfRun runr(w.generator, app::MacroWorld::kGenIp, w.server,
                       app::MacroWorld::kSrvIp, icfg);
    runr.start();
    ex->warm(15 * sim::kMillisecond);
    sim::Tick window = ex->scaledWindow(40 * sim::kMillisecond);
    tls::TlsStats s0 = runr.receiverTlsStats();
    ex->measure(
        window, [&] { runr.measureStart(); }, [&] { runr.measureStop(); });
    tls::TlsStats s1 = runr.receiverTlsStats();

    double full = static_cast<double>(s1.rxFullyOffloaded -
                                      s0.rxFullyOffloaded);
    double part = static_cast<double>(s1.rxPartiallyOffloaded -
                                      s0.rxPartiallyOffloaded);
    double none = static_cast<double>(s1.rxNotOffloaded -
                                      s0.rxNotOffloaded);
    double tot = full + part + none;

    emitRegistrySnapshot(ctx, "abl_resync",
                         {{"loss", tagNum(loss)},
                          {"reorder", tagNum(reorder)},
                          {"record_kib", tagNum(static_cast<double>(
                                             recordSize >> 10))}});
    return Mix{tot ? 100 * full / tot : 0, tot ? 100 * part / tot : 0,
               tot ? 100 * none / tot : 0, runr.meter().gbps()};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Ablation: receive-side recovery machinery (record mix "
                "under impairment)");
    struct Case
    {
        const char *name;
        double loss, reorder;
    };
    const Case cases[] = {Case{"loss 1%", 0.01, 0}, Case{"loss 3%", 0.03, 0},
                          Case{"reorder 1%", 0, 0.01},
                          Case{"reorder 3%", 0, 0.03}};
    Mix mixes[4];
    {
        Sweep sweep("abl_resync", opt);
        for (int i = 0; i < 4; i++) {
            const Case &c = cases[i];
            sweep.add(c.name, [&mixes, i, c](sim::RunContext &ctx) {
                // 16 KiB records never align with 1460-byte segments;
                // the mid-record resume machinery does all the
                // recovery work.
                mixes[i] = run(ctx, c.loss, c.reorder, 16384);
            });
        }
        sweep.drain();
    }

    std::printf("%-26s %7s %8s %6s %8s\n", "configuration", "full",
                "partial", "none", "Gbps");
    for (int i = 0; i < 4; i++) {
        const Mix &m = mixes[i];
        std::printf("%-26s %6.0f%% %7.0f%% %5.0f%% %8.2f\n",
                    strprintf("16K records, %s", cases[i].name).c_str(),
                    m.fullPct, m.partPct, m.nonePct, m.gbps);
    }
    std::printf("\nWithout the speculative search+track+confirm FSM, every "
                "loss would stop offloading until a record started exactly "
                "at a segment boundary (once every 292 records at 16 KiB / "
                "MSS 1460): the 'full' column would collapse to ~0%%.\n");
    return 0;
}
