/**
 * @file
 * Machine-readable benchmark records. Every bench prints its human
 * table; calling jsonRecord() alongside emits one JSON line per data
 * point so BENCH_*.json trajectories can be recorded by tooling:
 *
 *   {"bench":"fig13","metric":"gbps","value":42.1,
 *    "crypto_impl":"hw","variant":"offload+zc","file_kib":"256"}
 *
 * Lines go to stdout; when ANIC_BENCH_JSON names a file they are
 * appended there as well. The active crypto kernel is always included
 * since it dominates wall-clock (not simulated) numbers.
 */

#ifndef ANIC_BENCH_BENCH_JSON_HH
#define ANIC_BENCH_BENCH_JSON_HH

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <utility>

#include "crypto/cpu.hh"

namespace anic::bench {

using JsonExtra = std::initializer_list<std::pair<const char *, std::string>>;

inline void
jsonRecord(const char *bench, const char *metric, double value,
           JsonExtra extra = {})
{
    std::string line = "{\"bench\":\"";
    line += bench;
    line += "\",\"metric\":\"";
    line += metric;
    line += "\",\"value\":";
    char num[64];
    std::snprintf(num, sizeof num, "%.6g", value);
    line += num;
    line += ",\"crypto_impl\":\"";
    line += crypto::activeCryptoImplName();
    line += "\"";
    for (const auto &[key, val] : extra) {
        line += ",\"";
        line += key;
        line += "\":\"";
        line += val;
        line += "\"";
    }
    line += "}";

    std::printf("%s\n", line.c_str());
    if (const char *path = std::getenv("ANIC_BENCH_JSON")) {
        if (std::FILE *f = std::fopen(path, "a")) {
            std::fprintf(f, "%s\n", line.c_str());
            std::fclose(f);
        }
    }
}

} // namespace anic::bench

#endif // ANIC_BENCH_BENCH_JSON_HH
