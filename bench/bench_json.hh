/**
 * @file
 * Machine-readable benchmark records. Every bench prints its human
 * table; calling jsonRecord() alongside emits one JSON line per data
 * point so BENCH_*.json trajectories can be recorded by tooling:
 *
 *   {"bench":"fig13","metric":"gbps","value":42.1,
 *    "crypto_impl":"hw","variant":"offload+zc","file_kib":"256"}
 *
 * emitRegistrySnapshot() additionally dumps the whole hierarchical
 * StatsRegistry (every component instrument, uniform schema across
 * all benches and examples):
 *
 *   {"schema":"anic.registry.v1","bench":"fig13","crypto_impl":"hw",
 *    "scenario":{"variant":"offload+zc"},"stats":{"srv":{"nic0":...}}}
 *
 * Two call styles:
 *
 *  - RunContext overloads (preferred): the line is buffered in the
 *    run's Output and flushed by the JobRunner in submission order,
 *    which keeps `--jobs N` byte-identical to serial. Snapshots read
 *    the context's own registry; ANIC_SNAPSHOT_DIR / ANIC_TRACE_FILE
 *    artifacts are attached to the Output and written at flush time.
 *
 *  - Immediate overloads (DEPRECATED, kept as thin shims for one PR
 *    for ad-hoc tools): write straight to stdout, ANIC_BENCH_JSON,
 *    ANIC_SNAPSHOT_DIR and ANIC_TRACE_FILE, reading the thread-local
 *    global registry/ring. Not safe under a JobRunner.
 */

#ifndef ANIC_BENCH_BENCH_JSON_HH
#define ANIC_BENCH_BENCH_JSON_HH

#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "sim/run_context.hh"

namespace anic::bench {

using JsonExtra = std::initializer_list<std::pair<const char *, std::string>>;

/** Scenario tags carried by a registry snapshot ("variant":"https"). */
using ScenarioTags = std::vector<std::pair<std::string, std::string>>;

/** Compact numeric tag value ("0.01", "256"). */
inline std::string
tagNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

namespace detail {

/** Builds one {"bench":...,"metric":...} record line (no newline). */
std::string recordLine(const char *bench, const char *metric, double value,
                       JsonExtra extra);

/** Builds one anic.registry.v1 snapshot line from @p reg. */
std::string snapshotLine(const std::string &bench,
                         const ScenarioTags &scenario,
                         const sim::StatsRegistry &reg);

/** Immediate sinks (stdout + ANIC_BENCH_JSON; snapshot files). */
void writeJsonLine(const std::string &line, const std::string &jsonPath = "");
void writeSnapshotFile(const std::string &bench, const std::string &line);
void writeTraceFile(const std::string &dump);

} // namespace detail

// ------------------------------------------------ RunContext style

/** Buffers one record line in @p ctx (flushed in submission order). */
void jsonRecord(sim::RunContext &ctx, const char *bench, const char *metric,
                double value, JsonExtra extra = {});

/** Buffers a snapshot of @p ctx's registry, plus (when configured)
 *  a per-run snapshot-file artifact and a trace dump. Must run while
 *  the run's world is alive (scopes unlink on destruction). */
void emitRegistrySnapshot(sim::RunContext &ctx, const std::string &bench,
                          const ScenarioTags &scenario = {});

// ------------------------------- immediate style (deprecated shims)

/** DEPRECATED: immediate-mode jsonRecord (single-run tools only). */
void jsonRecord(const char *bench, const char *metric, double value,
                JsonExtra extra = {});

/** DEPRECATED: immediate-mode snapshot of the thread-local global
 *  (or @p reg) registry (single-run tools only). */
void emitRegistrySnapshot(const std::string &bench,
                          const ScenarioTags &scenario = {},
                          sim::StatsRegistry *reg = nullptr);

} // namespace anic::bench

#endif // ANIC_BENCH_BENCH_JSON_HH
