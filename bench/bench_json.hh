/**
 * @file
 * Machine-readable benchmark records. Every bench prints its human
 * table; calling jsonRecord() alongside emits one JSON line per data
 * point so BENCH_*.json trajectories can be recorded by tooling:
 *
 *   {"bench":"fig13","metric":"gbps","value":42.1,
 *    "crypto_impl":"hw","variant":"offload+zc","file_kib":"256"}
 *
 * Lines go to stdout; when ANIC_BENCH_JSON names a file they are
 * appended there as well. The active crypto kernel is always included
 * since it dominates wall-clock (not simulated) numbers.
 *
 * emitRegistrySnapshot() additionally dumps the whole hierarchical
 * StatsRegistry (every component instrument, uniform schema across
 * all benches and examples):
 *
 *   {"schema":"anic.registry.v1","bench":"fig13","crypto_impl":"hw",
 *    "scenario":{"variant":"offload+zc"},"stats":{"srv":{"nic0":...}}}
 *
 * It must run while the world is alive (scopes unlink on
 * destruction). Snapshots go to stdout and ANIC_BENCH_JSON like
 * records; ANIC_SNAPSHOT_DIR=<dir> additionally writes one
 * <bench>[-<n>].json file per snapshot, and ANIC_TRACE_FILE=<path>
 * dumps the global trace ring as JSONL (when ANIC_TRACE enables it).
 */

#ifndef ANIC_BENCH_BENCH_JSON_HH
#define ANIC_BENCH_BENCH_JSON_HH

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "crypto/cpu.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace anic::bench {

using JsonExtra = std::initializer_list<std::pair<const char *, std::string>>;

/** Scenario tags carried by a registry snapshot ("variant":"https"). */
using ScenarioTags = std::vector<std::pair<std::string, std::string>>;

/** Compact numeric tag value ("0.01", "256"). */
inline std::string
tagNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

inline void
jsonRecord(const char *bench, const char *metric, double value,
           JsonExtra extra = {})
{
    std::string line = "{\"bench\":\"";
    line += bench;
    line += "\",\"metric\":\"";
    line += metric;
    line += "\",\"value\":";
    char num[64];
    std::snprintf(num, sizeof num, "%.6g", value);
    line += num;
    line += ",\"crypto_impl\":\"";
    line += crypto::activeCryptoImplName();
    line += "\"";
    for (const auto &[key, val] : extra) {
        line += ",\"";
        line += key;
        line += "\":\"";
        line += val;
        line += "\"";
    }
    line += "}";

    std::printf("%s\n", line.c_str());
    if (const char *path = std::getenv("ANIC_BENCH_JSON")) {
        if (std::FILE *f = std::fopen(path, "a")) {
            std::fprintf(f, "%s\n", line.c_str());
            std::fclose(f);
        }
    }
}

inline void
emitRegistrySnapshot(const std::string &bench, const ScenarioTags &scenario = {},
                     sim::StatsRegistry *reg = nullptr)
{
    if (reg == nullptr)
        reg = &sim::StatsRegistry::global();

    std::string line = "{\"schema\":\"anic.registry.v1\",\"bench\":\"";
    line += bench;
    line += "\",\"crypto_impl\":\"";
    line += crypto::activeCryptoImplName();
    line += "\",\"scenario\":{";
    bool first = true;
    for (const auto &[key, val] : scenario) {
        if (!first)
            line += ",";
        first = false;
        line += "\"";
        line += key;
        line += "\":\"";
        line += val;
        line += "\"";
    }
    line += "},\"stats\":";
    reg->writeJson(line);
    line += "}";

    std::printf("%s\n", line.c_str());
    if (const char *path = std::getenv("ANIC_BENCH_JSON")) {
        if (std::FILE *f = std::fopen(path, "a")) {
            std::fprintf(f, "%s\n", line.c_str());
            std::fclose(f);
        }
    }
    if (const char *dir = std::getenv("ANIC_SNAPSHOT_DIR")) {
        // One file per snapshot: <bench>.json, <bench>-2.json, ...
        static std::vector<std::pair<std::string, int>> seq;
        int n = 0;
        for (auto &[name, cnt] : seq) {
            if (name == bench)
                n = ++cnt;
        }
        if (n == 0) {
            seq.emplace_back(bench, 1);
            n = 1;
        }
        std::string path = std::string(dir) + "/" + bench;
        if (n > 1)
            path += "-" + std::to_string(n);
        path += ".json";
        if (std::FILE *f = std::fopen(path.c_str(), "w")) {
            std::fprintf(f, "%s\n", line.c_str());
            std::fclose(f);
        }
    }
    if (const char *path = std::getenv("ANIC_TRACE_FILE")) {
        sim::TraceRing &ring = sim::TraceRing::global();
        if (ring.enabled()) {
            if (std::FILE *f = std::fopen(path, "w")) {
                ring.dumpJsonl(f);
                std::fclose(f);
            }
        }
    }
}

} // namespace anic::bench

#endif // ANIC_BENCH_BENCH_JSON_HH
