/**
 * @file
 * Figure 10: NVMe-TCP/fio cycles per random read on the server as a
 * function of I/O depth, for 4 KiB and 256 KiB requests, with the
 * copy+CRC share of the total. The paper reports 2-8% offloadable
 * work for 4 KiB and 25% (low depth) to ~55% (depth >= 1Ki, LLC
 * overflow) for 256 KiB.
 */

#include "app/fio.hh"
#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Point
{
    double cyclesPerReq = 0;
    double copyCrcPct = 0;
    double idlePct = 0;
};

Point
measure(sim::RunContext &ctx, uint32_t blockSize, int depth)
{
    auto ex = ExperimentBuilder()
                  .run(ctx)
                  .serverCores(1)
                  .generatorCores(8)
                  .remoteStorage()
                  // Deep queues need roomy sockets.
                  .serverRcvBuf(4 << 20)
                  .generatorSndBuf(4 << 20)
                  .build();
    app::MacroWorld &w = ex->world();

    app::FioConfig fcfg;
    fcfg.blockSize = blockSize;
    fcfg.ioDepth = depth;
    app::FioJob job(w.sim, *w.storage->queue(0), fcfg);
    w.server.core(0).post([&job] { job.start(); });

    ex->warm(10 * sim::kMillisecond);
    sim::Tick window = ex->scaledWindow(40 * sim::kMillisecond);
    std::vector<double> cyc = w.server.cycleSnapshot();
    std::vector<sim::Tick> busy = w.server.busySnapshot();
    uint64_t done0 = job.completions();
    ex->warm(window);
    double cycles = w.server.busyCyclesSince(cyc);
    double reqs = static_cast<double>(job.completions() - done0);

    host::CycleModel m;
    // Offloadable share: the copy (depth-dependent locality) + CRC.
    size_t working_set = static_cast<size_t>(blockSize) *
                         static_cast<size_t>(depth);
    double copy_crc =
        (m.copyPerByte(working_set) + m.crcPerByte) * blockSize;

    Point p;
    p.cyclesPerReq = reqs > 0 ? cycles / reqs : 0;
    p.copyCrcPct = p.cyclesPerReq > 0 ? 100.0 * copy_crc / p.cyclesPerReq : 0;
    p.idlePct = 100.0 * (1.0 - w.server.busyCores(busy, window));

    emitRegistrySnapshot(ctx, "fig10",
                         {{"block_kib", tagNum(blockSize >> 10)},
                          {"depth", tagNum(depth)}});
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Figure 10: NVMe-TCP/fio cycles per random read "
                "(copy+crc = offloadable share)");

    const uint32_t blocks[] = {4096, 262144};
    const char *blockNames[] = {"4KiB", "256KiB"};
    const int depths[] = {1, 4, 16, 64, 256, 1024};
    Point pts[2][6]; // [block][depth]
    {
        Sweep sweep("fig10", opt);
        for (int bi = 0; bi < 2; bi++) {
            for (int di = 0; di < 6; di++) {
                uint32_t block = blocks[bi];
                int depth = depths[di];
                std::string label = strprintf("block=%s/depth=%d",
                                              blockNames[bi], depth);
                sweep.add(label,
                          [&pts, bi, di, block, depth](sim::RunContext &ctx) {
                              pts[bi][di] = measure(ctx, block, depth);
                          });
            }
        }
        sweep.drain();
    }

    for (int bi = 0; bi < 2; bi++) {
        std::printf("\n-- %s random reads --\n", blockNames[bi]);
        std::printf("%-8s %14s %10s %8s\n", "depth", "cycles/req",
                    "copy+crc", "idle");
        for (int di = 0; di < 6; di++) {
            const Point &p = pts[bi][di];
            std::printf("%-8d %14.0f %9.1f%% %7.1f%%\n", depths[di],
                        p.cyclesPerReq, p.copyCrcPct, p.idlePct);
        }
    }
    std::printf("\npaper: 4KiB 2-8%%; 256KiB 25%% (low depth) to ~55%% "
                "(>=1Ki, working set exceeds LLC)\n");
    return 0;
}
