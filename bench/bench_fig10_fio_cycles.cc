/**
 * @file
 * Figure 10: NVMe-TCP/fio cycles per random read on the server as a
 * function of I/O depth, for 4 KiB and 256 KiB requests, with the
 * copy+CRC share of the total. The paper reports 2-8% offloadable
 * work for 4 KiB and 25% (low depth) to ~55% (depth >= 1Ki, LLC
 * overflow) for 256 KiB.
 */

#include "app/fio.hh"
#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Point
{
    double cyclesPerReq;
    double copyCrcPct;
    double idlePct;
};

Point
measure(uint32_t blockSize, int depth)
{
    app::MacroWorld::Config cfg;
    cfg.serverCores = 1;
    cfg.generatorCores = 8;
    cfg.remoteStorage = true;
    cfg.storage.pageCacheBytes = 0;
    // Deep queues need roomy sockets.
    cfg.serverTcp.rcvBufSize = 4 << 20;
    cfg.generatorTcp.sndBufSize = 4 << 20;
    app::MacroWorld w(cfg);

    app::FioConfig fcfg;
    fcfg.blockSize = blockSize;
    fcfg.ioDepth = depth;
    app::FioJob job(w.sim, *w.storage->queue(0), fcfg);
    w.server.core(0).post([&job] { job.start(); });

    w.sim.runFor(10 * sim::kMillisecond);
    sim::Tick window = measureWindow(40 * sim::kMillisecond);
    std::vector<double> cyc = w.server.cycleSnapshot();
    std::vector<sim::Tick> busy = w.server.busySnapshot();
    uint64_t done0 = job.completions();
    w.sim.runFor(window);
    double cycles = w.server.busyCyclesSince(cyc);
    double reqs = static_cast<double>(job.completions() - done0);

    host::CycleModel m;
    // Offloadable share: the copy (depth-dependent locality) + CRC.
    size_t working_set = static_cast<size_t>(blockSize) *
                         static_cast<size_t>(depth);
    double copy_crc =
        (m.copyPerByte(working_set) + m.crcPerByte) * blockSize;

    Point p;
    p.cyclesPerReq = reqs > 0 ? cycles / reqs : 0;
    p.copyCrcPct = p.cyclesPerReq > 0 ? 100.0 * copy_crc / p.cyclesPerReq : 0;
    p.idlePct = 100.0 * (1.0 - w.server.busyCores(busy, window));

    emitRegistrySnapshot("fig10",
                         {{"block_kib", tagNum(blockSize >> 10)},
                          {"depth", tagNum(depth)}});
    return p;
}

void
sweep(uint32_t blockSize, const char *label)
{
    std::printf("\n-- %s random reads --\n", label);
    std::printf("%-8s %14s %10s %8s\n", "depth", "cycles/req", "copy+crc",
                "idle");
    for (int depth : {1, 4, 16, 64, 256, 1024}) {
        Point p = measure(blockSize, depth);
        std::printf("%-8d %14.0f %9.1f%% %7.1f%%\n", depth, p.cyclesPerReq,
                    p.copyCrcPct, p.idlePct);
    }
}

} // namespace

int
main()
{
    printHeader("Figure 10: NVMe-TCP/fio cycles per random read "
                "(copy+crc = offloadable share)");
    sweep(4096, "4KiB");
    sweep(262144, "256KiB");
    std::printf("\npaper: 4KiB 2-8%%; 256KiB 25%% (low depth) to ~55%% "
                "(>=1Ki, working set exceeds LLC)\n");
    return 0;
}
