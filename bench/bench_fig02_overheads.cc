/**
 * @file
 * Figure 2: L5P overheads — cycles per message and the compute-bound
 * (offloadable) share, for NVMe-TCP client write/read (256 KiB
 * capsules) and TLS transmit/receive (16 KiB records). The paper
 * reports 46%/49% offloadable for NVMe-TCP write/read and 74%/60%
 * for TLS transmit/receive.
 */

#include "app/fio.hh"
#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Row
{
    const char *name = "";
    double cycles = 0;
    double offloadablePct = 0;
};

Row
nvmeRow(sim::RunContext &ctx, bool writes)
{
    auto ex = ExperimentBuilder()
                  .run(ctx)
                  .serverCores(1)
                  .generatorCores(8)
                  .remoteStorage()
                  .serverRcvBuf(4 << 20)
                  .serverSndBuf(4 << 20)
                  .generatorSndBuf(4 << 20)
                  .generatorRcvBuf(4 << 20)
                  .build();
    app::MacroWorld &w = ex->world();

    app::FioConfig fcfg;
    fcfg.blockSize = 262144;
    fcfg.ioDepth = 16;
    fcfg.writes = writes;
    app::FioJob job(w.sim, *w.storage->queue(0), fcfg);
    w.server.core(0).post([&job] { job.start(); });
    ex->warm(10 * sim::kMillisecond);

    sim::Tick window = ex->scaledWindow(40 * sim::kMillisecond);
    std::vector<double> cyc = w.server.cycleSnapshot();
    uint64_t done0 = job.completions();
    ex->warm(window);
    double cycles = w.server.busyCyclesSince(cyc);
    double reqs = static_cast<double>(job.completions() - done0);

    host::CycleModel m;
    // Write: CRC of the outgoing capsule. Read: verify CRC + copy to
    // the block layer.
    double offloadable =
        writes ? m.crcPerByte * fcfg.blockSize
               : (m.crcPerByte + m.copyPerByte(fcfg.blockSize * 16)) *
                     fcfg.blockSize;
    double per_req = reqs > 0 ? cycles / reqs : 0;

    emitRegistrySnapshot(ctx, "fig02",
                         {{"workload", writes ? "nvme_write" : "nvme_read"}});
    return Row{writes ? "NVMe-TCP write" : "NVMe-TCP read", per_req,
               per_req > 0 ? 100.0 * offloadable / per_req : 0};
}

Row
tlsRow(sim::RunContext &ctx, bool rxSide)
{
    auto ex = ExperimentBuilder()
                  .run(ctx)
                  .serverCores(1)
                  .generatorCores(rxSide ? 4 : 1)
                  .pageCache()
                  .build();
    app::MacroWorld &w = ex->world();

    app::IperfConfig icfg;
    icfg.streams = rxSide ? 4 : 1;
    app::IperfRun run(w.generator, app::MacroWorld::kGenIp, w.server,
                      app::MacroWorld::kSrvIp, icfg);
    run.start();
    ex->warm(10 * sim::kMillisecond);

    sim::Tick window = ex->scaledWindow(30 * sim::kMillisecond);
    core::Node &dut = rxSide ? w.server : w.generator;
    std::vector<double> cyc = dut.cycleSnapshot();
    tls::TlsStats s0 = rxSide ? run.receiverTlsStats()
                              : run.senderTlsStats();
    ex->warm(window);
    double cycles = dut.busyCyclesSince(cyc);
    tls::TlsStats s1 = rxSide ? run.receiverTlsStats()
                              : run.senderTlsStats();
    double records =
        rxSide ? static_cast<double>(s1.recordsRx - s0.recordsRx)
               : static_cast<double>(s1.recordsTx - s0.recordsTx);
    double bytes = rxSide ? static_cast<double>(s1.plaintextBytesRx -
                                                s0.plaintextBytesRx)
                          : static_cast<double>(s1.plaintextBytesTx -
                                                s0.plaintextBytesTx);

    host::CycleModel m;
    double crypto = (rxSide ? m.aesGcmDecryptPerByte
                            : m.aesGcmEncryptPerByte) *
                    (records > 0 ? bytes / records : 0);
    double per_rec = records > 0 ? cycles / records : 0;

    emitRegistrySnapshot(ctx, "fig02",
                         {{"workload", rxSide ? "tls_rx" : "tls_tx"}});
    return Row{rxSide ? "TLS receive" : "TLS transmit", per_rec,
               per_rec > 0 ? 100.0 * crypto / per_rec : 0};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Figure 2: L5P overheads (compute-bound share is what the "
                "NIC can take)");

    Row rows[4];
    {
        Sweep sweep("fig02", opt);
        sweep.add("nvme_write", [&rows](sim::RunContext &ctx) {
            rows[0] = nvmeRow(ctx, true);
        });
        sweep.add("nvme_read", [&rows](sim::RunContext &ctx) {
            rows[1] = nvmeRow(ctx, false);
        });
        sweep.add("tls_tx", [&rows](sim::RunContext &ctx) {
            rows[2] = tlsRow(ctx, false);
        });
        sweep.add("tls_rx", [&rows](sim::RunContext &ctx) {
            rows[3] = tlsRow(ctx, true);
        });
        sweep.drain();
    }

    std::printf("%-16s %16s %14s\n", "workload", "cycles/message",
                "offloadable");
    for (const Row &r : rows) {
        std::printf("%-16s %16.0f %13.0f%%\n", r.name, r.cycles,
                    r.offloadablePct);
    }
    std::printf("\npaper: NVMe write 46%%, read 49%%; TLS transmit 74%%, "
                "receive 60%%\n");
    return 0;
}
