/**
 * @file
 * L5P generality perf smoke: one data point per autonomous offload
 * protocol (TLS records, NVMe-TCP mixed reads+writes, iSCSI mixed
 * reads+writes), each on a clean wire and on a mildly lossy one.
 * Every point reports the offload hit rate — messages fully handled
 * by the NIC engines over all messages — plus zero-copy placement
 * volume and resync pressure. The paper's claim under test: the same
 * stream FSM serves all three L5Ps through the protocol-agnostic
 * l5o_create binding, degrading to software only around loss and
 * recovering via resync.
 *
 * The exit code gates CI: on the clean wire every protocol must
 * complete with a >= 90% hit rate and zero digest/IO failures.
 *
 * When ANIC_SIMSPEED_TRAJECTORY names a file, one summary line with
 * schema "anic.l5p.v1" (hit rate + placement + resyncs per
 * protocol/wire point) is appended next to the simspeed records.
 */

#include <cstdlib>
#include <ctime>
#include <memory>

#include "bench_common.hh"
#include "core/node.hh"
#include "iscsi/session.hh"
#include "nvmetcp/host_queue.hh"
#include "nvmetcp/target.hh"
#include "tls/ktls.hh"

using namespace anic;
using namespace anic::bench;

namespace {

constexpr net::IpAddr kIpA = net::makeIp(10, 2, 0, 1);
constexpr net::IpAddr kIpB = net::makeIp(10, 2, 0, 2);
constexpr sim::Tick kTimeLimit = 4 * sim::kSecond;
constexpr sim::Tick kPoll = 1 * sim::kMillisecond;
constexpr uint32_t kIoLen = 262144;

struct Point
{
    bool completed = false;
    double hitRate = 0;      ///< NIC-verified messages / all messages
    uint64_t placedBytes = 0;
    uint64_t resyncReq = 0;
    uint64_t failures = 0;
};

/** One two-node world per point (worlds never share state). Node "a"
 *  exports the storage target / TLS sink, node "b" drives the load —
 *  the OffloadWorld layout, rebuilt here on a RunContext so points
 *  run under the JobRunner. */
struct World
{
    sim::Simulator sim;
    net::Link link;
    core::Node a;
    core::Node b;

    World(sim::RunContext &ctx, bool lossy)
        : link(sim, linkCfg(lossy)), a(sim, nodeCfg(ctx, "a", 11)),
          b(sim, nodeCfg(ctx, "b", 22))
    {
        a.attachPort(link, 0, kIpA);
        b.attachPort(link, 1, kIpB);
    }

    static net::Link::Config
    linkCfg(bool lossy)
    {
        net::Link::Config c;
        c.seed = 0x15b71;
        if (lossy) {
            // Enough loss that the rx FSMs pay real resyncs, low
            // enough that the offloads keep a useful hit rate and
            // TCP finishes well inside the time limit.
            c.dir[0].lossRate = 0.005;
            c.dir[1].lossRate = 0.005;
        }
        return c;
    }

    static core::Node::Config
    nodeCfg(sim::RunContext &ctx, const char *name, uint64_t seed)
    {
        core::Node::Config c;
        c.name = name;
        c.stackSeed = seed;
        c.bindRun(ctx);
        return c;
    }

    void
    runToCompletion(const std::function<bool()> &done)
    {
        while (sim.now() < kTimeLimit && !done())
            sim.runFor(kPoll);
    }
};

/** TLS: one rx-offloaded flow b -> a streaming fixed-size records. */
Point
runTls(sim::RunContext &ctx, bool lossy, uint64_t bytes)
{
    World w(ctx, lossy);
    constexpr uint16_t kPort = 443;
    constexpr uint64_t kSecret = 0x15b;
    constexpr size_t kRecord = 4096;

    tls::TlsConfig rxCfg;
    rxCfg.recordSize = kRecord;
    rxCfg.rxOffload = true;
    tls::TlsConfig txCfg;
    txCfg.recordSize = kRecord;

    std::unique_ptr<tls::TlsSocket> tx, rx;
    uint64_t sent = 0, received = 0;
    auto pump = [&] {
        while (tx != nullptr && sent < bytes) {
            size_t n = static_cast<size_t>(
                std::min<uint64_t>(kRecord, bytes - sent));
            Bytes buf(n, 0x5a);
            size_t acc = tx->send(buf);
            sent += acc;
            if (acc < n)
                break;
        }
    };
    // Install the rx offload context at accept time (on the SYN) so
    // the NIC FSM starts byte-synchronized with record 0.
    w.a.stack().listen(kPort, w.a.tcpConfig(), [&](tcp::TcpConnection &c) {
        rx = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(kSecret, false), rxCfg);
        rx->enableOffload(w.a.device());
        rx->setOnReadable([&] {
            while (rx->readable())
                received += rx->pop().data.size();
        });
    });
    tcp::TcpConnection &c =
        w.b.stack().connect(kIpB, kIpA, kPort, w.b.tcpConfig());
    c.setOnConnected([&] {
        tx = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(kSecret, true), txCfg);
        tx->setOnWritable(pump);
        pump();
    });
    w.runToCompletion([&] { return received >= bytes; });

    Point p;
    p.completed = received >= bytes;
    if (rx != nullptr) {
        const tls::TlsStats &s = rx->stats();
        uint64_t full = s.rxFullyOffloaded.value();
        uint64_t classified = full + s.rxPartiallyOffloaded.value() +
                              s.rxNotOffloaded.value();
        p.hitRate = classified > 0
                        ? static_cast<double>(full) /
                              static_cast<double>(classified)
                        : 0;
        p.resyncReq = s.rxResyncRequests.value();
        p.failures = s.tagFailures.value();
    }
    return p;
}

/** NVMe-TCP: alternating 256 KiB writes (H2C + R2T credit flow) and
 *  reads, host and target both fully offloaded. */
Point
runNvme(sim::RunContext &ctx, bool lossy, int ops)
{
    World w(ctx, lossy);
    constexpr uint16_t kPort = 4420;
    host::NvmeDrive drive(w.sim, {});
    nvmetcp::WireConfig wc;
    std::unique_ptr<nvmetcp::NvmeTarget> target;
    std::unique_ptr<nvmetcp::NvmeHostQueue> hostq;
    int completed = 0, failed = 0;

    w.a.stack().listen(kPort, w.a.tcpConfig(), [&](tcp::TcpConnection &c) {
        target = std::make_unique<nvmetcp::NvmeTarget>(c, drive, wc);
        nvmetcp::NvmeOffloadConfig tcfg;
        tcfg.crcRx = tcfg.copyRx = tcfg.crcTx = true;
        target->enableOffload(w.a.device(), c, tcfg);
    });
    tcp::TcpConnection &c =
        w.b.stack().connect(kIpB, kIpA, kPort, w.b.tcpConfig());
    c.setOnConnected([&] {
        nvmetcp::NvmeOffloadConfig ocfg;
        ocfg.crcRx = ocfg.copyRx = ocfg.crcTx = true;
        hostq = std::make_unique<nvmetcp::NvmeHostQueue>(c, wc, ocfg);
        hostq->enableOffload(w.b.device(), c);
        for (int i = 0; i < ops; i++) {
            uint64_t slba = static_cast<uint64_t>(kIoLen) * 2 * i;
            if (i % 2 == 0) {
                hostq->write(slba, kIoLen, drive.config().contentSeed,
                             [&](bool ok) {
                                 completed++;
                                 failed += ok ? 0 : 1;
                             });
            } else {
                hostq->read(slba, kIoLen,
                            [&](bool ok, host::BlockBufferPtr) {
                                completed++;
                                failed += ok ? 0 : 1;
                            });
            }
        }
    });
    w.runToCompletion([&] { return completed >= ops; });

    Point p;
    p.completed = completed >= ops;
    p.failures = static_cast<uint64_t>(failed);
    if (hostq != nullptr && target != nullptr) {
        const nvmetcp::NvmeHostStats &h = hostq->stats();
        const nvmetcp::NvmeTargetStats &t = target->stats();
        uint64_t skip = h.crcSkipped.value() + t.h2cDigestSkipped;
        uint64_t total =
            skip + h.crcSoftware.value() + t.h2cDigestSoftware;
        p.hitRate = total > 0 ? static_cast<double>(skip) /
                                    static_cast<double>(total)
                              : 0;
        p.placedBytes = h.bytesPlaced.value() + t.h2cBytesPlaced;
        p.resyncReq = h.resyncRequests.value() + t.resyncRequests;
        p.failures += h.crcFailures.value() + t.digestFailures;
    }
    return p;
}

/** iSCSI: alternating unsolicited Data-Out writes and reads,
 *  initiator and target both offloaded (digest rx/tx + placement). */
Point
runIscsi(sim::RunContext &ctx, bool lossy, int ops)
{
    World w(ctx, lossy);
    constexpr uint16_t kPort = 3260;
    host::NvmeDrive drive(w.sim, {});
    iscsi::IscsiWireConfig wc;
    std::unique_ptr<iscsi::IscsiTarget> target;
    std::unique_ptr<iscsi::IscsiInitiator> init;
    int completed = 0, failed = 0;

    w.a.stack().listen(kPort, w.a.tcpConfig(), [&](tcp::TcpConnection &c) {
        target = std::make_unique<iscsi::IscsiTarget>(c, drive, wc);
        iscsi::IscsiOffloadConfig tcfg;
        tcfg.crcRx = tcfg.copyRx = tcfg.crcTx = true;
        target->enableOffload(w.a.device(), c, tcfg);
    });
    tcp::TcpConnection &c =
        w.b.stack().connect(kIpB, kIpA, kPort, w.b.tcpConfig());
    c.setOnConnected([&] {
        iscsi::IscsiOffloadConfig ocfg;
        ocfg.crcRx = ocfg.copyRx = ocfg.crcTx = true;
        init = std::make_unique<iscsi::IscsiInitiator>(c, wc, ocfg);
        init->enableOffload(w.b.device(), c);
        for (int i = 0; i < ops; i++) {
            uint64_t slba = static_cast<uint64_t>(kIoLen) * 2 * i;
            if (i % 2 == 0) {
                init->write(slba, kIoLen, drive.config().contentSeed,
                            [&](bool ok) {
                                completed++;
                                failed += ok ? 0 : 1;
                            });
            } else {
                init->read(slba, kIoLen,
                           [&](bool ok, host::BlockBufferPtr) {
                               completed++;
                               failed += ok ? 0 : 1;
                           });
            }
        }
    });
    w.runToCompletion([&] { return completed >= ops; });

    Point p;
    p.completed = completed >= ops;
    p.failures = static_cast<uint64_t>(failed);
    if (init != nullptr && target != nullptr) {
        const iscsi::IscsiInitiatorStats &h = init->stats();
        const iscsi::IscsiTargetStats &t = target->stats();
        uint64_t skip = h.digestSkipped.value() + t.digestSkipped.value();
        uint64_t total = skip + h.digestSoftware.value() +
                         t.digestSoftware.value();
        p.hitRate = total > 0 ? static_cast<double>(skip) /
                                    static_cast<double>(total)
                              : 0;
        p.placedBytes = h.bytesPlaced.value() + t.bytesPlaced.value();
        p.resyncReq =
            h.resyncRequests.value() + t.resyncRequests.value();
        p.failures += h.digestFailures.value() + t.digestFailures.value();
    }
    return p;
}

constexpr int kProtoCount = 3;
const char *kProtoNames[kProtoCount] = {"tls", "nvme", "iscsi"};

void
appendTrajectory(const Point (&pts)[kProtoCount][2], bool quick)
{
    const char *path = std::getenv("ANIC_SIMSPEED_TRAJECTORY");
    if (path == nullptr || *path == '\0')
        return;
    std::FILE *f = std::fopen(path, "a");
    if (f == nullptr) {
        std::fprintf(stderr, "l5p: cannot append to %s\n", path);
        return;
    }
    char date[32] = "unknown";
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    if (gmtime_r(&now, &tm) != nullptr)
        std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%SZ", &tm);
    const char *rev = std::getenv("ANIC_BENCH_REV");
    std::fprintf(f,
                 "{\"schema\":\"anic.l5p.v1\",\"date\":\"%s\","
                 "\"rev\":\"%s\",\"quick\":%s,\"points\":{",
                 date, rev != nullptr ? rev : "unknown",
                 quick ? "true" : "false");
    bool first = true;
    for (int pi = 0; pi < kProtoCount; pi++) {
        for (int li = 0; li < 2; li++) {
            const Point &p = pts[pi][li];
            std::fprintf(f,
                         "%s\"%s/%s\":{\"hit_rate\":%.4f,"
                         "\"placed_bytes\":%llu,\"resync_req\":%llu,"
                         "\"completed\":%s}",
                         first ? "" : ",", kProtoNames[pi],
                         li == 0 ? "clean" : "lossy", p.hitRate,
                         static_cast<unsigned long long>(p.placedBytes),
                         static_cast<unsigned long long>(p.resyncReq),
                         p.completed ? "true" : "false");
            first = false;
        }
    }
    std::fprintf(f, "}}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    bool quick = opt.quick || util::Env::quick();
    uint64_t tlsBytes = quick ? (512 << 10) : (4 << 20);
    int ops = quick ? 8 : 24;

    printHeader("L5P generality smoke: offload hit rate per protocol");
    std::printf("TLS records / NVMe-TCP r+w / iSCSI r+w through the "
                "unified l5o_create binding\n\n");

    Point pts[kProtoCount][2] = {}; // [proto][clean, lossy]
    {
        Sweep sweep("l5p", opt);
        for (int pi = 0; pi < kProtoCount; pi++) {
            for (int li = 0; li < 2; li++) {
                bool lossy = li == 1;
                const char *wire = lossy ? "lossy" : "clean";
                std::string label =
                    strprintf("%s/%s", kProtoNames[pi], wire);
                sweep.add(label, [&pts, pi, li, lossy, wire, tlsBytes,
                                  ops](sim::RunContext &ctx) {
                    Point p;
                    if (pi == 0)
                        p = runTls(ctx, lossy, tlsBytes);
                    else if (pi == 1)
                        p = runNvme(ctx, lossy, ops);
                    else
                        p = runIscsi(ctx, lossy, ops);
                    pts[pi][li] = p;
                    JsonExtra tags = {{"proto", kProtoNames[pi]},
                                      {"wire", wire}};
                    jsonRecord(ctx, "l5p", "offload_hit_rate", p.hitRate,
                               tags);
                    jsonRecord(ctx, "l5p", "placed_bytes",
                               static_cast<double>(p.placedBytes), tags);
                    jsonRecord(ctx, "l5p", "resync_req",
                               static_cast<double>(p.resyncReq), tags);
                });
            }
        }
        sweep.drain();
    }

    std::printf("%-8s %-6s %9s %12s %8s %6s %5s\n", "proto", "wire",
                "hit%", "placed_KiB", "resyncs", "fails", "done");
    for (int pi = 0; pi < kProtoCount; pi++) {
        for (int li = 0; li < 2; li++) {
            const Point &p = pts[pi][li];
            std::printf("%-8s %-6s %8.1f%% %12llu %8llu %6llu %5s\n",
                        kProtoNames[pi], li == 0 ? "clean" : "lossy",
                        100.0 * p.hitRate,
                        static_cast<unsigned long long>(p.placedBytes >>
                                                        10),
                        static_cast<unsigned long long>(p.resyncReq),
                        static_cast<unsigned long long>(p.failures),
                        p.completed ? "yes" : "NO");
        }
    }
    appendTrajectory(pts, quick);

    // The smoke gate: on the clean wire every protocol must be nearly
    // fully offloaded and failure-free. Lossy points are recorded for
    // the trajectory but only gated on completion (resync pressure
    // varies with the loss draw; correctness never does).
    bool ok = true;
    for (int pi = 0; pi < kProtoCount; pi++) {
        const Point &clean = pts[pi][0];
        if (!clean.completed || clean.hitRate < 0.9 ||
            clean.failures != 0)
            ok = false;
        if (!pts[pi][1].completed)
            ok = false;
    }
    std::printf("\n%s\n",
                ok ? "PASS: clean-wire hit rate >= 90% on all three "
                     "protocols, no failures"
                   : "FAIL: offload hit rate, completion, or failure "
                     "gate tripped");
    return ok ? 0 : 1;
}
