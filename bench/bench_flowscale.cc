/**
 * @file
 * Flow-scale macrobenchmark: 10^5+ concurrent TLS-offloaded flows —
 * five times the NIC's context cache (4 MiB / 208 B ~ 20K contexts) —
 * under Zipf-distributed request popularity and connection churn,
 * sweeping eviction policy (lru / clock / pinhot) x cache capacity
 * and reporting the offload hit rate, eviction and resync pressure,
 * and sustained response rate per point.
 *
 * The workload is request/response: a server wraps every accepted
 * connection in an offloaded-tx TlsSocket (one NIC context per flow),
 * clients send tiny requests chosen by a ZipfGen over the flow ranks
 * (rank 0 hottest), and churn closes and reopens a configurable
 * fraction of the flows per second, exercising context destroy /
 * create alongside cache replacement. Mild loss on the server->client
 * direction provokes retransmissions, so evicted contexts also pay
 * tx resyncs, not just refetches.
 *
 * The binary additionally replaces the global allocator with a
 * counting one and runs a serial probe world before the sweep to
 * report steady-state heap bytes per flow — the number the slab/flat
 * state layer (DESIGN.md §15) is accountable for. The probe runs
 * identically for any --jobs value, so stdout stays byte-identical.
 *
 * When ANIC_SIMSPEED_TRAJECTORY names a file, one summary line with
 * schema "anic.flowscale.v1" (hit rates + heap_bytes_per_flow) is
 * appended next to the simspeed records.
 *
 * Knobs: --flows N (ANIC_FLOWS, default 100000), --churn R (fraction
 * of flows cycled per second, default 0.2), --zipf S (default 0.99),
 * plus the shared sweep options. ANIC_CTX_POLICY is deliberately NOT
 * consulted here: the sweep sets the policy per point.
 */

#include <atomic>
#include <cstdlib>
#include <ctime>
#include <new>

#include "bench_common.hh"
#include "nic/cache_policy.hh"
#include "util/rand.hh"

// ------------------------------------------------ counting allocator
//
// Every new/delete in the binary is counted so the probe can report
// live heap bytes. A 16-byte header keeps malloc's 16-byte alignment;
// over-aligned types take the (unreplaced, self-consistent) aligned
// operator pair and simply go uncounted.

namespace {
std::atomic<uint64_t> g_heapLive{0};
constexpr size_t kHeapHdr = 16;
} // namespace

// GCC pattern-matches delete(p) -> free(p) and flags the header
// offset as a mismatched free; the pairing is in fact consistent
// because new applies the same offset.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#pragma GCC diagnostic ignored "-Warray-bounds"

void *
operator new(std::size_t n)
{
    void *base = std::malloc(n + kHeapHdr);
    if (base == nullptr)
        throw std::bad_alloc();
    *static_cast<uint64_t *>(base) = n;
    g_heapLive.fetch_add(n, std::memory_order_relaxed);
    return static_cast<char *>(base) + kHeapHdr;
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    if (p == nullptr)
        return;
    char *base = static_cast<char *>(p) - kHeapHdr;
    g_heapLive.fetch_sub(*reinterpret_cast<uint64_t *>(base),
                         std::memory_order_relaxed);
    std::free(base);
}

void
operator delete[](void *p) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

#pragma GCC diagnostic pop

using namespace anic;
using namespace anic::bench;

namespace {

constexpr int kListenPorts = 16; ///< spreads flows over 16 port spaces
constexpr uint16_t kBasePort = 443;
constexpr size_t kReqBytes = 16;
constexpr size_t kRespBytes = 1024;
constexpr uint64_t kTlsSecret = 0xf10;
constexpr sim::Tick kStagger = 200 * sim::kNanosecond;
constexpr sim::Tick kDriverTick = 10 * sim::kMicrosecond;
constexpr int kReqPerTick = 5; ///< 500K requests/s offered load
constexpr sim::Tick kReaperTick = 2 * sim::kMillisecond;

struct FlowScaleParams
{
    int flows = 100000;
    double churnPerSec = 0.2; ///< fraction of flows cycled per second
    double zipfSkew = 0.99;
    nic::CtxPolicy policy = nic::CtxPolicy::Lru;
    size_t cacheCapacity = 20000;
};

/**
 * The flow-scale workload on a MacroWorld: a request/response server
 * with one offloaded-tx TLS context per accepted flow, and a client
 * fleet driven by a Zipf scheduler with background churn.
 */
class FlowScale
{
  public:
    FlowScale(app::MacroWorld &w, const FlowScaleParams &p)
        : w_(w), p_(p),
          zipf_(static_cast<uint32_t>(p.flows), p.zipfSkew, 0xf1005),
          churnRng_(0xc4c4), reqBuf_(kReqBytes, 0), respBuf_(kRespBytes, 0)
    {
        srvTlsCfg_.txOffload = true;
        srvTlsCfg_.recordSize = kRespBytes;
        srvTlsCfg_.aggregate = &srvTlsAgg_;
        cliTlsCfg_.aggregate = &cliTlsAgg_;
        slots_.reserve(static_cast<size_t>(p.flows));
        for (int i = 0; i < p_.flows; i++)
            slots_.push_back(std::make_unique<Slot>());
        for (int i = 0; i < kListenPorts; i++) {
            w_.server.stack().listen(
                static_cast<uint16_t>(kBasePort + i), w_.server.tcpConfig(),
                [this](tcp::TcpConnection &c) { accept(c); });
        }
    }

    /** Staggered connection ramp; returns once (almost) every flow is
     *  established. */
    void
    openAll()
    {
        for (int i = 0; i < p_.flows; i++) {
            size_t idx = static_cast<size_t>(i);
            w_.sim.schedule(static_cast<sim::Tick>(i) * kStagger,
                            [this, idx] { openSlot(idx); });
        }
        w_.sim.runFor(static_cast<sim::Tick>(p_.flows) * kStagger +
                      5 * sim::kMillisecond);
        for (int tries = 0;
             established_ < p_.flows * 995 / 1000 && tries < 200; tries++) {
            w_.sim.runFor(5 * sim::kMillisecond);
        }
    }

    /** Starts the request driver and the teardown reaper. */
    void
    startLoad()
    {
        driverTick();
        reaperTick();
    }

    void
    measureStart()
    {
        measuring_ = true;
        windowResponses_ = 0;
    }
    void measureStop() { measuring_ = false; }

    int established() const { return established_; }
    uint64_t responses() const { return responses_; }
    uint64_t windowResponses() const { return windowResponses_; }
    uint64_t requestsIssued() const { return issued_; }
    uint64_t requestsSkipped() const { return skipped_; }
    uint64_t churnsCompleted() const { return churnDone_; }

  private:
    enum class SState : uint8_t
    {
        Closed,
        Connecting,
        Idle,     ///< established, no request outstanding
        Busy,     ///< awaiting a response
        Draining, ///< close() sent; reaper destroys at State::Closed
    };

    struct Slot
    {
        SState state = SState::Closed;
        tcp::TcpConnection *raw = nullptr;
        std::unique_ptr<tls::TlsSocket> tls;
        size_t expect = 0; ///< response plaintext bytes still due
    };

    struct SrvConn
    {
        tcp::TcpConnection *raw = nullptr;
        std::unique_ptr<tls::TlsSocket> tls;
        size_t reqPend = 0;  ///< request bytes collected
        size_t respOwed = 0; ///< response bytes TLS has not accepted
    };

    // ------------------------------------------------- client side

    void
    openSlot(size_t i)
    {
        Slot &s = *slots_[i];
        s.state = SState::Connecting;
        uint16_t port =
            static_cast<uint16_t>(kBasePort + i % kListenPorts);
        tcp::TcpConnection &c = w_.generator.stack().connect(
            app::MacroWorld::kGenIp, app::MacroWorld::kSrvIp, port,
            w_.generator.tcpConfig());
        s.raw = &c;
        c.setOnConnected([this, i, &c] {
            Slot &sl = *slots_[i];
            sl.tls = std::make_unique<tls::TlsSocket>(
                c, tls::SessionKeys::derive(kTlsSecret, true), cliTlsCfg_);
            sl.tls->setOnReadable([this, i] { onSlotReadable(i); });
            sl.state = SState::Idle;
            established_++;
        });
    }

    void
    onSlotReadable(size_t i)
    {
        Slot &s = *slots_[i];
        while (s.tls != nullptr && s.tls->readable()) {
            tcp::RxSegment seg = s.tls->pop();
            if (s.state != SState::Busy)
                continue; // stray bytes on a draining slot
            size_t n = std::min(s.expect, seg.data.size());
            s.expect -= n;
            if (s.expect == 0) {
                s.state = SState::Idle;
                responses_++;
                if (measuring_)
                    windowResponses_++;
            }
        }
    }

    /** Issues Zipf-selected requests and paces churn. */
    void
    driverTick()
    {
        for (int r = 0; r < kReqPerTick; r++) {
            size_t i = zipf_.next();
            issued_++;
            Slot &s = *slots_[i];
            if (s.state != SState::Idle) {
                skipped_++; // outstanding request, reconnecting, ...
                continue;
            }
            s.state = SState::Busy;
            s.expect = kRespBytes;
            size_t acc = s.tls->send(reqBuf_);
            ANIC_ASSERT(acc == kReqBytes, "request did not fit");
        }

        churnCredit_ += static_cast<double>(p_.flows) * p_.churnPerSec *
                        sim::ticksToSeconds(kDriverTick);
        while (churnCredit_ >= 1.0) {
            churnCredit_ -= 1.0;
            size_t i = churnRng_.below(static_cast<uint64_t>(p_.flows));
            Slot &s = *slots_[i];
            if (s.state != SState::Idle)
                continue; // only cycle quiescent flows
            s.state = SState::Draining;
            s.tls->close();
            established_--;
            draining_.push_back(i);
        }
        w_.sim.schedule(kDriverTick, [this] { driverTick(); });
    }

    /**
     * Tears down fully-closed connections on both sides (destroying
     * the TLS socket first releases the NIC context via l5o_destroy)
     * and reopens churned client slots under a fresh ephemeral port —
     * same popularity rank, new flow identity.
     */
    void
    reaperTick()
    {
        size_t kept = 0;
        for (size_t idx : draining_) {
            Slot &s = *slots_[idx];
            if (s.raw->state() == tcp::TcpConnection::State::Closed) {
                s.tls.reset();
                w_.generator.stack().destroy(*s.raw);
                s.raw = nullptr;
                s.state = SState::Closed;
                churnDone_++;
                openSlot(idx);
            } else {
                draining_[kept++] = idx;
            }
        }
        draining_.resize(kept);

        kept = 0;
        for (size_t idx : srvClosing_) {
            SrvConn &sc = *srvConns_[idx];
            if (sc.raw->state() == tcp::TcpConnection::State::Closed) {
                sc.tls.reset(); // destroys the NIC tx context
                w_.server.stack().destroy(*sc.raw);
                srvConns_[idx].reset();
                srvFree_.push_back(idx);
            } else {
                srvClosing_[kept++] = idx;
            }
        }
        srvClosing_.resize(kept);
        w_.sim.schedule(kReaperTick, [this] { reaperTick(); });
    }

    // ------------------------------------------------- server side

    void
    accept(tcp::TcpConnection &c)
    {
        size_t idx;
        if (!srvFree_.empty()) {
            idx = srvFree_.back();
            srvFree_.pop_back();
            srvConns_[idx] = std::make_unique<SrvConn>();
        } else {
            idx = srvConns_.size();
            srvConns_.push_back(std::make_unique<SrvConn>());
        }
        SrvConn &sc = *srvConns_[idx];
        sc.raw = &c;
        sc.tls = std::make_unique<tls::TlsSocket>(
            c, tls::SessionKeys::derive(kTlsSecret, false), srvTlsCfg_);
        sc.tls->enableOffload(w_.server.device()); // l5o_create per flow
        sc.tls->setOnReadable([this, idx] { srvReadable(idx); });
        sc.tls->setOnWritable([this, idx] { srvPump(idx); });
        sc.tls->setOnPeerClosed([this, idx] { srvPeerClosed(idx); });
    }

    void
    srvReadable(size_t idx)
    {
        SrvConn &sc = *srvConns_[idx];
        while (sc.tls != nullptr && sc.tls->readable()) {
            tcp::RxSegment seg = sc.tls->pop();
            sc.reqPend += seg.data.size();
        }
        while (sc.reqPend >= kReqBytes) {
            sc.reqPend -= kReqBytes;
            sc.respOwed += kRespBytes;
        }
        srvPump(idx);
    }

    void
    srvPump(size_t idx)
    {
        SrvConn &sc = *srvConns_[idx];
        while (sc.respOwed > 0) {
            size_t n = std::min(sc.respOwed, kRespBytes);
            size_t acc = sc.tls->send(ByteView(respBuf_).subspan(0, n));
            sc.respOwed -= acc;
            if (acc < n)
                return; // ring full; onWritable resumes
        }
    }

    void
    srvPeerClosed(size_t idx)
    {
        SrvConn &sc = *srvConns_[idx];
        sc.tls->close();
        srvClosing_.push_back(idx);
    }

    app::MacroWorld &w_;
    FlowScaleParams p_;
    ZipfGen zipf_;
    Rng churnRng_;
    Bytes reqBuf_;
    Bytes respBuf_;
    tls::TlsConfig srvTlsCfg_;
    tls::TlsConfig cliTlsCfg_;
    tls::TlsStats srvTlsAgg_;
    tls::TlsStats cliTlsAgg_;

    std::vector<std::unique_ptr<Slot>> slots_;
    std::vector<size_t> draining_;
    std::vector<std::unique_ptr<SrvConn>> srvConns_;
    std::vector<size_t> srvFree_;
    std::vector<size_t> srvClosing_;

    int established_ = 0;
    bool measuring_ = false;
    uint64_t responses_ = 0;
    uint64_t windowResponses_ = 0;
    uint64_t issued_ = 0;
    uint64_t skipped_ = 0;
    uint64_t churnDone_ = 0;
    double churnCredit_ = 0;
};

struct PointResult
{
    double hitRate = 0;      ///< ctx hits / touches over the window
    double missPerResp = 0;  ///< context fetches per response
    double evictPerResp = 0; ///< evictions per response
    double respPerSec = 0;
    uint64_t txResyncs = 0;
    uint64_t churns = 0; ///< completed close/reopen cycles (whole run)
    int flowsUp = 0;     ///< established flows at window end
    size_t resident = 0; ///< cache-resident contexts at window end
};

PointResult
runPoint(sim::RunContext *ctx, const FlowScaleParams &p,
         double *heapBytesPerFlow, double *ctxBytesPerFlow)
{
    uint64_t live0 = g_heapLive.load(std::memory_order_relaxed);

    app::MacroWorld::Config wc;
    wc.serverCores = 4;
    wc.generatorCores = 8;
    wc.remoteStorage = false;
    wc.nicCfg.ctxPolicy = p.policy;
    wc.nicCfg.ctxCacheCapacity = p.cacheCapacity;
    // Mild loss toward the generator: server retransmissions hit
    // evicted contexts and show up as tx resyncs (dir 0 = toward the
    // server, dir 1 = toward the generator).
    wc.link.dir[1].lossRate = 0.001;
    // Small per-flow socket buffers: only SendRing preallocates its
    // capacity, and at 10^5 flows the rings dominate heap. Responses
    // are one 1 KiB record, requests a few dozen bytes.
    wc.serverTcp.sndBufSize = 4 << 10;
    wc.serverTcp.rcvBufSize = 8 << 10;
    wc.generatorTcp.sndBufSize = 512;
    wc.generatorTcp.rcvBufSize = 16 << 10;
    wc.run = ctx;
    app::MacroWorld w(wc);

    FlowScale fs(w, p);
    fs.openAll();
    fs.startLoad();
    w.sim.runFor(10 * sim::kMillisecond); // warm the context cache

    sim::Tick window = ctx != nullptr
                           ? ctx->scaleWindow(40 * sim::kMillisecond)
                           : 10 * sim::kMillisecond;
    nic::NicStats n0 = w.server.nicDev().stats();
    fs.measureStart();
    w.sim.runFor(window);
    fs.measureStop();
    nic::NicStats n1 = w.server.nicDev().stats();

    PointResult r;
    uint64_t hits = n1.ctxCacheHits - n0.ctxCacheHits;
    uint64_t misses = n1.ctxCacheMisses - n0.ctxCacheMisses;
    uint64_t evictions = n1.ctxCacheEvictions - n0.ctxCacheEvictions;
    uint64_t resp = fs.windowResponses();
    r.hitRate = hits + misses > 0
                    ? static_cast<double>(hits) /
                          static_cast<double>(hits + misses)
                    : 0.0;
    r.missPerResp = resp > 0 ? static_cast<double>(misses) /
                                   static_cast<double>(resp)
                             : 0.0;
    r.evictPerResp = resp > 0 ? static_cast<double>(evictions) /
                                    static_cast<double>(resp)
                              : 0.0;
    r.respPerSec = static_cast<double>(resp) / sim::ticksToSeconds(window);
    r.txResyncs = n1.txResyncs - n0.txResyncs;
    r.churns = fs.churnsCompleted();
    r.flowsUp = fs.established();
    r.resident = w.server.nicDev().ctxCache().size();

    // Steady-state heap, after the window so rings/pools are touched.
    if (heapBytesPerFlow != nullptr) {
        uint64_t live = g_heapLive.load(std::memory_order_relaxed);
        *heapBytesPerFlow = static_cast<double>(live - live0) /
                            static_cast<double>(p.flows);
    }
    if (ctxBytesPerFlow != nullptr) {
        *ctxBytesPerFlow =
            static_cast<double>(w.server.nicDev().ctxTableHeapBytes()) /
            static_cast<double>(p.flows);
    }

    if (ctx != nullptr) {
        emitRegistrySnapshot(*ctx, "flowscale",
                             {{"policy", nic::ctxPolicyName(p.policy)},
                              {"cache", tagNum(static_cast<double>(
                                            p.cacheCapacity))},
                              {"flows", tagNum(p.flows)}});
    }
    return r;
}

constexpr nic::CtxPolicy kPolicies[] = {
    nic::CtxPolicy::Lru, nic::CtxPolicy::Clock, nic::CtxPolicy::PinHot};
constexpr size_t kCaps[] = {4096, 20000};
constexpr int kPolicyCount = static_cast<int>(std::size(kPolicies));
constexpr int kCapCount = static_cast<int>(std::size(kCaps));

void
appendTrajectory(const PointResult (&res)[kPolicyCount][kCapCount],
                 int flows, double heapPerFlow, double ctxPerFlow,
                 bool quick)
{
    const char *path = std::getenv("ANIC_SIMSPEED_TRAJECTORY");
    if (path == nullptr || *path == '\0')
        return;
    std::FILE *f = std::fopen(path, "a");
    if (f == nullptr) {
        std::fprintf(stderr, "flowscale: cannot append to %s\n", path);
        return;
    }
    char date[32] = "unknown";
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    if (gmtime_r(&now, &tm) != nullptr)
        std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%SZ", &tm);
    const char *rev = std::getenv("ANIC_BENCH_REV");
    std::fprintf(f,
                 "{\"schema\":\"anic.flowscale.v1\",\"date\":\"%s\","
                 "\"rev\":\"%s\",\"quick\":%s,\"flows\":%d,"
                 "\"heap_bytes_per_flow\":%.0f,"
                 "\"ctx_table_bytes_per_flow\":%.0f,\"points\":{",
                 date, rev != nullptr ? rev : "unknown",
                 quick ? "true" : "false", flows, heapPerFlow, ctxPerFlow);
    bool first = true;
    for (int pi = 0; pi < kPolicyCount; pi++) {
        for (int ci = 0; ci < kCapCount; ci++) {
            std::fprintf(f,
                         "%s\"%s/c%zu\":{\"hit_rate\":%.4f,"
                         "\"resp_per_sec\":%.0f}",
                         first ? "" : ",",
                         nic::ctxPolicyName(kPolicies[pi]), kCaps[ci],
                         res[pi][ci].hitRate, res[pi][ci].respPerSec);
            first = false;
        }
    }
    std::fprintf(f, "}}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    const int flows = opt.flows > 0 ? opt.flows : 100000;
    const double churn = opt.churn >= 0 ? opt.churn : 0.2;
    const double zipf = opt.zipf >= 0 ? opt.zipf : 0.99;
    printHeader("flow scale: eviction policy x context-cache capacity "
                "under Zipf load + churn");
    std::printf("flows=%d churn=%.2f/s zipf=%.2f (20K-context cache "
                "default; --flows/--churn/--zipf to change)\n\n",
                flows, churn, zipf);

    // Heap probe: one serial world, default policy, measured with the
    // counting allocator. Runs before the sweep and independent of
    // --jobs, so its two stdout lines are byte-identical for any N.
    double heapPerFlow = 0, ctxPerFlow = 0;
    {
        FlowScaleParams pp;
        pp.flows = flows;
        pp.churnPerSec = churn;
        pp.zipfSkew = zipf;
        PointResult probe = runPoint(nullptr, pp, &heapPerFlow, &ctxPerFlow);
        std::printf("heap probe (lru/c20000): %.0f bytes/flow steady "
                    "state, %.0f of them NIC context tables\n",
                    heapPerFlow, ctxPerFlow);
        std::printf("heap probe: %d flows up, %llu churn cycles, "
                    "hit rate %.1f%%\n\n",
                    probe.flowsUp,
                    static_cast<unsigned long long>(probe.churns),
                    100.0 * probe.hitRate);
    }

    PointResult res[kPolicyCount][kCapCount];
    {
        Sweep sweep("flowscale", opt);
        for (int pi = 0; pi < kPolicyCount; pi++) {
            for (int ci = 0; ci < kCapCount; ci++) {
                std::string label =
                    strprintf("%s/c%zu", nic::ctxPolicyName(kPolicies[pi]),
                              kCaps[ci]);
                sweep.add(label, [&res, pi, ci, flows, churn,
                                  zipf](sim::RunContext &ctx) {
                    FlowScaleParams p;
                    p.flows = flows;
                    p.churnPerSec = churn;
                    p.zipfSkew = zipf;
                    p.policy = kPolicies[pi];
                    p.cacheCapacity = kCaps[ci];
                    PointResult r = runPoint(&ctx, p, nullptr, nullptr);
                    res[pi][ci] = r;
                    JsonExtra tags = {
                        {"policy", nic::ctxPolicyName(p.policy)},
                        {"cache",
                         tagNum(static_cast<double>(p.cacheCapacity))},
                        {"flows", tagNum(flows)},
                        {"churn", tagNum(churn)},
                        {"zipf", tagNum(zipf)}};
                    jsonRecord(ctx, "flowscale", "hit_rate", r.hitRate,
                               tags);
                    jsonRecord(ctx, "flowscale", "resp_per_sec",
                               r.respPerSec, tags);
                    jsonRecord(ctx, "flowscale", "evict_per_resp",
                               r.evictPerResp, tags);
                    jsonRecord(ctx, "flowscale", "tx_resyncs",
                               static_cast<double>(r.txResyncs), tags);
                });
            }
        }
        sweep.drain();
    }

    std::printf("%-8s %-8s %7s %10s %11s %9s %10s %9s %9s\n", "policy",
                "cache", "hit%", "fetch/resp", "evict/resp", "resyncs",
                "resp/s", "churns", "flows");
    for (int pi = 0; pi < kPolicyCount; pi++) {
        for (int ci = 0; ci < kCapCount; ci++) {
            const PointResult &r = res[pi][ci];
            std::printf("%-8s %-8zu %6.1f%% %10.3f %11.3f %9llu %10.0f "
                        "%9llu %9d\n",
                        nic::ctxPolicyName(kPolicies[pi]), kCaps[ci],
                        100.0 * r.hitRate, r.missPerResp, r.evictPerResp,
                        static_cast<unsigned long long>(r.txResyncs),
                        r.respPerSec,
                        static_cast<unsigned long long>(r.churns),
                        r.flowsUp);
        }
    }
    std::printf("\npaper tension (Fig 19): flows >> cache; the policy "
                "decides which contexts stay resident\n");

    appendTrajectory(res, flows, heapPerFlow, ctxPerFlow,
                     opt.quick || util::Env::quick());
    return 0;
}
