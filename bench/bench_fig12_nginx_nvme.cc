/**
 * @file
 * Figure 12: nginx with the NVMe-TCP offload, configuration C1 (no
 * page cache; every request reads the remote drive, so throughput is
 * bounded by the drive's ~21.4 Gbps). Reports (a) 1-core Gbps,
 * (b) 8-core Gbps, (c) 8-core busy cores, for file sizes 4-256 KiB,
 * baseline vs offload. Paper: 1-core gains 4-44% growing with file
 * size; at 8 cores the drive saturates and gains become up to 27%
 * fewer busy cores.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Figure 12: nginx + NVMe-TCP offload, C1 (drive-bound, "
                "http transport)");

    const uint64_t kibs[] = {4, 16, 64, 256};
    NginxResult r[4][2][2]; // [size][cores8][offload]
    {
        Sweep sweep("fig12", opt);
        for (int ki = 0; ki < 4; ki++) {
            for (int cores8 = 0; cores8 < 2; cores8++) {
                for (int off = 0; off < 2; off++) {
                    uint64_t kib = kibs[ki];
                    std::string label =
                        strprintf("kib=%llu/cores=%d/off=%d",
                                  static_cast<unsigned long long>(kib),
                                  cores8 ? 8 : 1, off);
                    sweep.add(label, [&r, ki, cores8, off,
                                      kib](sim::RunContext &ctx) {
                        NginxParams p;
                        p.serverCores = cores8 ? 8 : 1;
                        p.fileSize = kib << 10;
                        p.c1 = true;
                        p.variant = HttpVariant::Http;
                        p.storage.offload = off == 1;
                        p.connections = 256;
                        p.bench = "fig12";
                        p.scenario = {
                            {"file_kib", tagNum(static_cast<double>(kib))},
                            {"cores", tagNum(p.serverCores)},
                            {"storage_offload", off ? "1" : "0"}};
                        r[ki][cores8][off] = runNginx(ctx, p);
                    });
                }
            }
        }
        sweep.drain();
    }

    std::printf("%-10s | %10s %10s %7s | %10s %10s %7s | %9s %9s\n",
                "file[KiB]", "base 1c", "off 1c", "gain", "base 8c",
                "off 8c", "gain", "busy base", "busy off");
    for (int ki = 0; ki < 4; ki++) {
        const auto &x = r[ki];
        std::printf("%-10llu | %10.2f %10.2f %6.0f%% | %10.2f %10.2f %6.0f%% "
                    "| %9.2f %9.2f\n",
                    static_cast<unsigned long long>(kibs[ki]), x[0][0].gbps,
                    x[0][1].gbps,
                    100.0 * (x[0][1].gbps / x[0][0].gbps - 1.0), x[1][0].gbps,
                    x[1][1].gbps,
                    100.0 * (x[1][1].gbps / x[1][0].gbps - 1.0),
                    x[1][0].busyCores, x[1][1].busyCores);
    }
    std::printf("\npaper: 1-core gains 4-44%% growing with size; 8 cores "
                "saturate the drive (21.38 Gbps) and the offload shows up "
                "as up to 27%% fewer busy cores\n");
    return 0;
}
