/**
 * @file
 * Simulator-speed microbenchmark: how many simulated packets and
 * events the engine chews through per wall-clock second. Sweeps
 * packet size (TCP MSS) x flow count x link impairments over a plain
 * TCP iperf world (no TLS, so the measurement tracks the event/packet
 * machinery rather than crypto), and reports
 *
 *   pkts/s   simulated data packets delivered per wall second
 *   events/s simulator events executed per wall second
 *
 * plus a registry snapshot whose sim.alloc.* counters substantiate
 * the zero-allocation claim (poolMisses plateaus after warm-up while
 * poolHits keeps growing).
 *
 * When ANIC_SIMSPEED_TRAJECTORY names a file, one summary JSON line
 * per invocation is appended there; BENCH_simspeed.json at the repo
 * root is the committed trajectory CI extends on every run.
 */

#include <chrono>
#include <ctime>

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Point
{
    double pktsPerSec = 0;
    double eventsPerSec = 0;
    double simPkts = 0;
    double gbps = 0;
};

struct Case
{
    const char *label;
    uint32_t mss;
    int flows;
    bool impaired;
    /** Simulated server/generator cores; 0 = the bench default (4),
     *  overridable with --cores / ANIC_CORES. */
    int cores = 0;
    /** Interrupt coalescing (1/0 = per-packet interrupts). */
    uint32_t coalescePkts = 1;
    sim::Tick coalesceDelay = 0;
};

constexpr Case kCases[] = {
    {"mss256/f8/clean", 256, 8, false},
    {"mss1460/f1/clean", 1460, 1, false},
    {"mss1460/f8/clean", 1460, 8, false},
    {"mss1460/f64/clean", 1460, 64, false},
    {"mss1460/f8/lossy", 1460, 8, true},
    {"mss8960/f8/clean", 8960, 8, false},
    // Multi-queue axes: core scaling (one NIC queue pair per core)
    // and interrupt coalescing on the many-flow point.
    {"mss1460/f8/c1", 1460, 8, false, 1},
    {"mss1460/f8/c8", 1460, 8, false, 8},
    {"mss1460/f64/coal8", 1460, 64, false, 0, 8,
     10 * sim::kMicrosecond},
};
constexpr int kCaseCount = static_cast<int>(std::size(kCases));

Point
measure(sim::RunContext &ctx, const Case &c, int defaultCores)
{
    app::MacroWorld::Config wc;
    int cores = c.cores > 0 ? c.cores : defaultCores;
    wc.serverCores = cores;
    wc.generatorCores = cores;
    wc.remoteStorage = false;
    wc.nicCfg.coalescePkts = c.coalescePkts;
    wc.nicCfg.coalesceDelay = c.coalesceDelay;
    wc.serverTcp.mss = c.mss;
    wc.generatorTcp.mss = c.mss;
    if (c.impaired) {
        wc.link.dir[0].lossRate = 0.005;
        wc.link.dir[0].reorderRate = 0.01;
        wc.link.dir[1].lossRate = 0.005;
    }
    wc.run = &ctx;
    app::MacroWorld w(wc);

    app::IperfConfig icfg;
    icfg.streams = c.flows;
    icfg.tlsEnabled = false;
    icfg.sendChunk = 64 << 10;
    app::IperfRun run(w.generator, app::MacroWorld::kGenIp, w.server,
                      app::MacroWorld::kSrvIp, icfg);
    run.start();
    w.sim.runFor(5 * sim::kMillisecond);

    sim::Tick window = ctx.scaleWindow(40 * sim::kMillisecond);
    uint64_t ev0 = w.sim.eventsExecuted();
    uint64_t pk0 = w.link.stats(0).delivered + w.link.stats(1).delivered;
    uint64_t by0 = run.bytesReceived();
    auto t0 = std::chrono::steady_clock::now();
    w.sim.runFor(window);
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    uint64_t ev = w.sim.eventsExecuted() - ev0;
    uint64_t pk = w.link.stats(0).delivered + w.link.stats(1).delivered - pk0;
    uint64_t by = run.bytesReceived() - by0;

    Point p;
    p.simPkts = static_cast<double>(pk);
    if (wall.count() > 0) {
        p.pktsPerSec = static_cast<double>(pk) / wall.count();
        p.eventsPerSec = static_cast<double>(ev) / wall.count();
    }
    p.gbps = window > 0 ? static_cast<double>(by) * 8.0 /
                              static_cast<double>(window)
                        : 0.0;

    emitRegistrySnapshot(ctx, "simspeed", {{"case", c.label}});
    return p;
}

void
appendTrajectory(const Point (&pts)[kCaseCount], bool quick)
{
    const char *path = std::getenv("ANIC_SIMSPEED_TRAJECTORY");
    if (path == nullptr || *path == '\0')
        return;
    std::FILE *f = std::fopen(path, "a");
    if (f == nullptr) {
        std::fprintf(stderr, "simspeed: cannot append to %s\n", path);
        return;
    }
    char date[32] = "unknown";
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    if (gmtime_r(&now, &tm) != nullptr)
        std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%SZ", &tm);
    const char *rev = std::getenv("ANIC_BENCH_REV");
    std::fprintf(f, "{\"schema\":\"anic.simspeed.v1\",\"date\":\"%s\","
                    "\"rev\":\"%s\",\"quick\":%s,\"points\":{",
                 date, rev != nullptr ? rev : "unknown",
                 quick ? "true" : "false");
    for (int i = 0; i < kCaseCount; i++) {
        std::fprintf(f, "%s\"%s\":{\"pkts_per_sec\":%.0f,"
                        "\"events_per_sec\":%.0f}",
                     i > 0 ? "," : "", kCases[i].label, pts[i].pktsPerSec,
                     pts[i].eventsPerSec);
    }
    std::fprintf(f, "}}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("simspeed: simulated packets & events per wall second "
                "(plain TCP iperf, pooled hot path)");

    Point pts[kCaseCount];
    {
        Sweep sweep("simspeed", opt);
        // --cores/ANIC_CORES moves the default core count; cases with
        // an explicit cores value (the cN scaling points) keep it.
        const int defaultCores = opt.cores > 0 ? opt.cores : 4;
        for (int i = 0; i < kCaseCount; i++) {
            const Case &c = kCases[i];
            sweep.add(c.label,
                      [&pts, i, &c, defaultCores](sim::RunContext &ctx) {
                Point p = measure(ctx, c, defaultCores);
                pts[i] = p;
                jsonRecord(ctx, "simspeed", "pkts_per_sec", p.pktsPerSec,
                           {{"case", c.label}});
                jsonRecord(ctx, "simspeed", "events_per_sec", p.eventsPerSec,
                           {{"case", c.label}});
                jsonRecord(ctx, "simspeed", "sim_gbps", p.gbps,
                           {{"case", c.label}});
            });
        }
        sweep.drain();
    }

    std::printf("%-20s %14s %14s %12s %10s\n", "case", "pkts/s", "events/s",
                "sim pkts", "sim Gbps");
    for (int i = 0; i < kCaseCount; i++) {
        std::printf("%-20s %14.0f %14.0f %12.0f %10.2f\n", kCases[i].label,
                    pts[i].pktsPerSec, pts[i].eventsPerSec, pts[i].simPkts,
                    pts[i].gbps);
    }
    std::printf("\ntrajectory: BENCH_simspeed.json (set "
                "ANIC_SIMSPEED_TRAJECTORY to append)\n");

    appendTrajectory(pts, opt.quick || util::Env::quick());
    return 0;
}
