#include "bench_json.hh"

#include <mutex>

#include "crypto/cpu.hh"
#include "sim/trace.hh"
#include "util/env.hh"

namespace anic::bench {

namespace detail {

std::string
recordLine(const char *bench, const char *metric, double value,
           JsonExtra extra)
{
    std::string line = "{\"bench\":\"";
    line += bench;
    line += "\",\"metric\":\"";
    line += metric;
    line += "\",\"value\":";
    char num[64];
    std::snprintf(num, sizeof num, "%.6g", value);
    line += num;
    line += ",\"crypto_impl\":\"";
    line += crypto::activeCryptoImplName();
    line += "\"";
    for (const auto &[key, val] : extra) {
        line += ",\"";
        line += key;
        line += "\":\"";
        line += val;
        line += "\"";
    }
    line += "}";
    return line;
}

std::string
snapshotLine(const std::string &bench, const ScenarioTags &scenario,
             const sim::StatsRegistry &reg)
{
    std::string line = "{\"schema\":\"anic.registry.v1\",\"bench\":\"";
    line += bench;
    line += "\",\"crypto_impl\":\"";
    line += crypto::activeCryptoImplName();
    line += "\",\"scenario\":{";
    bool first = true;
    for (const auto &[key, val] : scenario) {
        if (!first)
            line += ",";
        first = false;
        line += "\"";
        line += key;
        line += "\":\"";
        line += val;
        line += "\"";
    }
    line += "},\"stats\":";
    reg.writeJson(line);
    line += "}";
    return line;
}

void
writeJsonLine(const std::string &line, const std::string &jsonPath)
{
    std::printf("%s\n", line.c_str());
    const std::string &path =
        jsonPath.empty() ? util::Env::benchJson() : jsonPath;
    if (!path.empty()) {
        if (std::FILE *f = std::fopen(path.c_str(), "a")) {
            std::fprintf(f, "%s\n", line.c_str());
            std::fclose(f);
        }
    }
}

void
writeSnapshotFile(const std::string &bench, const std::string &line)
{
    const std::string &dir = util::Env::snapshotDir();
    if (dir.empty())
        return;
    // One file per snapshot: <bench>.json, <bench>-2.json, ...
    // Callers flush in submission order, so numbering is stable; the
    // mutex only guards the map against concurrent ad-hoc writers.
    static std::mutex mu;
    static std::vector<std::pair<std::string, int>> seq;
    int n = 0;
    {
        std::lock_guard<std::mutex> lk(mu);
        for (auto &[name, cnt] : seq) {
            if (name == bench)
                n = ++cnt;
        }
        if (n == 0) {
            seq.emplace_back(bench, 1);
            n = 1;
        }
    }
    std::string path = dir + "/" + bench;
    if (n > 1) {
        path += "-";
        path += std::to_string(n);
    }
    path += ".json";
    if (std::FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "%s\n", line.c_str());
        std::fclose(f);
    }
}

void
writeTraceFile(const std::string &dump)
{
    const std::string &path = util::Env::traceFile();
    if (path.empty() || dump.empty())
        return;
    if (std::FILE *f = std::fopen(path.c_str(), "w")) {
        std::fwrite(dump.data(), 1, dump.size(), f);
        std::fclose(f);
    }
}

} // namespace detail

void
jsonRecord(sim::RunContext &ctx, const char *bench, const char *metric,
           double value, JsonExtra extra)
{
    ctx.json(detail::recordLine(bench, metric, value, extra));
}

void
emitRegistrySnapshot(sim::RunContext &ctx, const std::string &bench,
                     const ScenarioTags &scenario)
{
    std::string line = detail::snapshotLine(bench, scenario, ctx.registry());
    ctx.json(line);
    if (!util::Env::snapshotDir().empty())
        ctx.addSnapshot(bench, line);
    if (!util::Env::traceFile().empty())
        ctx.captureTraceDump();
}

void
jsonRecord(const char *bench, const char *metric, double value,
           JsonExtra extra)
{
    detail::writeJsonLine(detail::recordLine(bench, metric, value, extra));
}

void
emitRegistrySnapshot(const std::string &bench, const ScenarioTags &scenario,
                     sim::StatsRegistry *reg)
{
    if (reg == nullptr)
        reg = &sim::StatsRegistry::global();
    std::string line = detail::snapshotLine(bench, scenario, *reg);
    detail::writeJsonLine(line);
    detail::writeSnapshotFile(bench, line);
    sim::TraceRing &ring = sim::TraceRing::global();
    if (ring.enabled())
        detail::writeTraceFile(ring.jsonl());
}

} // namespace anic::bench
