/**
 * @file
 * Figure 18: packet-reordering effect at the TLS receiver — like
 * Figure 17 but with netem-style reordering instead of loss.
 * Reordering hurts much more than loss: at 2% only ~24% of records
 * remain fully offloaded and at 5% almost none do, yet offloaded
 * throughput never drops below the software-TLS baseline.
 */

#include "bench_common.hh"

using namespace anic;
using namespace anic::bench;

namespace {

struct Point
{
    double gbps = 0;
    double fullPct = 0, partialPct = 0, nonePct = 0;
};

const char *kModeName[] = {"tcp", "offload", "tls"};

Point
run(sim::RunContext &ctx, double rate, int mode /*0=tcp 1=offload 2=tls*/)
{
    net::Link::Config lc;
    lc.dir[0].reorderRate = rate;
    // netem reordering holds packets back for several RTTs; the
    // default 20 us barely leaves the current window.
    lc.dir[0].reorderExtraDelay = 500 * sim::kMicrosecond;
    lc.seed = 79;
    auto ex = ExperimentBuilder()
                  .run(ctx)
                  .serverCores(1)    // the measured, saturated receiver core
                  .generatorCores(8) // sender must not be the bottleneck
                  .pageCache()
                  .link(lc)
                  // Modest per-stream socket buffers: with 1 MB each, a
                  // single software-TLS core spends >100 ms
                  // pre-encrypting the initial 128-stream burst before
                  // any ack gets processed.
                  .generatorSndBuf(128 << 10)
                  .serverSndBuf(128 << 10)
                  .build();
    app::MacroWorld &w = ex->world();

    app::IperfConfig icfg;
    icfg.streams = 128;
    icfg.tlsEnabled = mode != 0;
    icfg.serverTls.rxOffload = mode == 1;
    app::IperfRun runr(w.generator, app::MacroWorld::kGenIp, w.server,
                       app::MacroWorld::kSrvIp, icfg);
    runr.start();
    ex->warm(20 * sim::kMillisecond);

    sim::Tick window = ex->scaledWindow(40 * sim::kMillisecond);
    tls::TlsStats s0 = runr.receiverTlsStats();
    ex->measure(
        window, [&] { runr.measureStart(); }, [&] { runr.measureStop(); });
    tls::TlsStats s1 = runr.receiverTlsStats();

    Point p;
    p.gbps = runr.meter().gbps();
    double full = static_cast<double>(s1.rxFullyOffloaded -
                                      s0.rxFullyOffloaded);
    double part = static_cast<double>(s1.rxPartiallyOffloaded -
                                      s0.rxPartiallyOffloaded);
    double none = static_cast<double>(s1.rxNotOffloaded -
                                      s0.rxNotOffloaded);
    double total = full + part + none;
    p.fullPct = total > 0 ? 100.0 * full / total : 0;
    p.partialPct = total > 0 ? 100.0 * part / total : 0;
    p.nonePct = total > 0 ? 100.0 * none / total : 0;

    emitRegistrySnapshot(ctx, "fig18", {{"reorder", tagNum(rate)},
                                        {"mode", kModeName[mode]}});
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchCli(argc, argv);
    printHeader("Figure 18: reordering at the receiver (1 saturated core, 128 "
                "TLS streams)");

    const double rates[] = {0.0, 0.01, 0.02, 0.03, 0.04, 0.05};
    Point pts[6][3]; // [rate][mode]
    {
        Sweep sweep("fig18", opt);
        for (int ri = 0; ri < 6; ri++) {
            for (int mode = 0; mode < 3; mode++) {
                double rate = rates[ri];
                std::string label = strprintf("reorder=%g/%s", rate,
                                              kModeName[mode]);
                sweep.add(label,
                          [&pts, ri, mode, rate](sim::RunContext &ctx) {
                              pts[ri][mode] = run(ctx, rate, mode);
                          });
            }
        }
        sweep.drain();
    }

    std::printf("%-8s %10s %10s %10s %11s | %7s %8s %6s\n", "reorder", "tcp",
                "offload", "tls(sw)", "off vs sw", "full", "partial",
                "none");
    for (int ri = 0; ri < 6; ri++) {
        const Point *m = pts[ri];
        std::printf("%-7.0f%% %10.2f %10.2f %10.2f %10.0f%% | %6.0f%% "
                    "%7.0f%% %5.0f%%\n",
                    rates[ri] * 100, m[0].gbps, m[1].gbps, m[2].gbps,
                    100.0 * (m[1].gbps / m[2].gbps - 1.0), m[1].fullPct,
                    m[1].partialPct, m[1].nonePct);
    }
    std::printf("\npaper: +9%% over software tls at 2%% reordering, ~0%% "
                "at 5%%; fully-offloaded records fall to 24%% (2%%) and "
                "<=2%% (5%%)\n");
    return 0;
}
