/**
 * @file
 * Shared bench command line + the Sweep driver every bench binary
 * uses to shard its sweep points across a JobRunner:
 *
 *   --jobs N          worker threads (default 1; output is
 *                     byte-identical for any N)
 *   --cores N         simulated server core count (default: the
 *                     bench's own choice; same as ANIC_CORES)
 *   --filter STR      run only sweep points whose label contains STR
 *   --json PATH       append machine-readable JSON lines to PATH
 *                     (overrides ANIC_BENCH_JSON)
 *   --timing-json P   write the wall-clock timing snapshot to P
 *   --quick           shrink measurement windows (same as ANIC_QUICK)
 *
 * Sweep wires the options to a sim::JobRunner with an ordered sink
 * that performs all file/stdout I/O (bench JSON lines, per-run
 * ANIC_SNAPSHOT_DIR snapshots, ANIC_TRACE_FILE dumps) strictly in
 * submission order. After drain() it emits a timing snapshot —
 * per-run wall-clock plus the aggregate speedup — to stderr and the
 * timing sinks, never to stdout, so parallel and serial stdout stay
 * comparable.
 */

#ifndef ANIC_BENCH_BENCH_CLI_HH
#define ANIC_BENCH_BENCH_CLI_HH

#include <string>

#include "bench_json.hh"
#include "sim/executor.hh"

namespace anic::bench {

struct BenchOptions
{
    int jobs = 1;
    int cores = 0; ///< --cores / ANIC_CORES; 0 = bench default
    int flows = 0; ///< --flows / ANIC_FLOWS; 0 = bench default
    double churn = -1.0; ///< --churn: conn churn rate; <0 = default
    double zipf = -1.0;  ///< --zipf: popularity skew s; <0 = default
    std::string filter;
    std::string jsonPath;   ///< --json override of ANIC_BENCH_JSON
    std::string timingJson; ///< --timing-json output path
    bool quick = false;     ///< --quick or ANIC_QUICK

    /** Per-run config implied by the options. */
    sim::RunConfig runConfig() const;
};

/** Parses the shared flags; exits(2) on unknown arguments, exits(0)
 *  after printing usage for --help. */
BenchOptions parseBenchCli(int argc, char **argv);

/** Ordered output sink: run text -> stdout, jsonLines -> bench JSON
 *  file, snapshots -> ANIC_SNAPSHOT_DIR, trace dump -> ANIC_TRACE_FILE. */
sim::JobRunner::Sink makeBenchSink(std::string jsonPath);

/**
 * One bench sweep: submit each data point as an independent job; the
 * human table is printed by the bench after drain() from per-point
 * result slots each job fills (distinct slots — no sharing).
 */
class Sweep
{
  public:
    Sweep(std::string bench, const BenchOptions &opt);
    ~Sweep();

    /** Submits one sweep point unless the label fails the filter.
     *  Returns false when filtered out (the result slot keeps its
     *  default value and the table shows a dash-worthy zero). */
    bool add(const std::string &label, sim::JobRunner::Job job);

    /** True when @p label passes --filter. */
    bool selected(const std::string &label) const;

    /** Waits for every point, flushes output in submission order,
     *  then emits the timing snapshot. */
    void drain();

    const sim::JobRunner::Stats &stats() const { return runner_.stats(); }
    int jobs() const { return runner_.jobs(); }

  private:
    void emitTiming();

    std::string bench_;
    BenchOptions opt_;
    sim::JobRunner runner_;
    uint64_t filtered_ = 0;
    bool drained_ = false;
};

} // namespace anic::bench

#endif // ANIC_BENCH_BENCH_CLI_HH
